package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pll/pll"
)

// do issues a request with an optional client ID and returns the
// response (body drained and closed).
func do(t *testing.T, method, url, clientID string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if clientID != "" {
		req.Header.Set("X-Client-Id", clientID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp
}

// TestRateLimitPerClient verifies the token bucket: with burst 1 and a
// refill far slower than the test, a client's second request sheds with
// 429 + a positive integer Retry-After, while a different client ID is
// untouched (per-client isolation) and /healthz and /metrics keep
// answering for the limited client.
func TestRateLimitPerClient(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ix, Config{RatePerSec: 0.01, RateBurst: 1})

	if resp := do(t, http.MethodGet, ts.URL+"/distance?s=0&t=3", "alice", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice #1: status %d, want 200", resp.StatusCode)
	}
	resp := do(t, http.MethodGet, ts.URL+"/distance?s=0&t=3", "alice", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #2: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	if resp := do(t, http.MethodGet, ts.URL+"/distance?s=0&t=3", "bob", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob: status %d, want 200 (buckets must be per client)", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp := do(t, http.MethodGet, ts.URL+path, "alice", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s for a rate-limited client: status %d, want 200 (probes and scrapes are exempt)", path, resp.StatusCode)
		}
	}
	if got := s.stack.admit.shedRate(); got != 1 {
		t.Fatalf("rate sheds = %d, want 1", got)
	}
	if got := s.stack.admit.trackedClients(); got != 2 {
		t.Fatalf("tracked clients = %d, want 2", got)
	}
}

// TestTokenBucketRefill drives the bucket with a fake clock: burst 2 at
// 2 req/s means two immediate admits, a shed telling the client to wait
// 1s, and one more admit after half a second restores one token.
func TestTokenBucketRefill(t *testing.T) {
	a := newAdmission(StackConfig{RatePerSec: 2, RateBurst: 2})
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if _, ok := a.takeToken("c"); !ok {
			t.Fatalf("take #%d: shed within burst", i+1)
		}
	}
	wait, ok := a.takeToken("c")
	if ok {
		t.Fatal("take #3: admitted past the burst without refill")
	}
	if wait != 1 {
		t.Fatalf("retry-after = %d, want 1 (ceil of 0.5s to the next token)", wait)
	}
	now = now.Add(500 * time.Millisecond)
	if _, ok := a.takeToken("c"); !ok {
		t.Fatal("take after 500ms at 2 req/s: shed despite a refilled token")
	}
	if _, ok := a.takeToken("c"); ok {
		t.Fatal("bucket refilled more than rate*elapsed")
	}
}

// TestConcurrencyShed holds the server's only concurrency slot open
// with a stalled upload and verifies the next request sheds immediately
// with 429 + Retry-After, then succeeds once the slot frees.
func TestConcurrencyShed(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ix, Config{MaxInflight: 1})

	pr, pw := io.Pipe()
	done := make(chan int, 1)
	go func() {
		resp := do(t, http.MethodPost, ts.URL+"/batch", "", pr)
		done <- resp.StatusCode
	}()
	if _, err := io.WriteString(pw, `{"source":0,"targets":[1`); err != nil {
		t.Fatal(err)
	}
	waitInflight(t, s, 1)

	resp := do(t, http.MethodGet, ts.URL+"/distance?s=0&t=3", "", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("with the slot held: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("concurrency 429 Retry-After = %q, want \"1\"", ra)
	}
	if got := s.stack.admit.shedConcurrency(); got != 1 {
		t.Fatalf("concurrency sheds = %d, want 1", got)
	}

	if _, err := io.WriteString(pw, `]}`); err != nil {
		t.Fatal(err)
	}
	pw.Close() //nolint:errcheck
	if status := <-done; status != http.StatusOK {
		t.Fatalf("slot-holding /batch: status %d, want 200", status)
	}
	if resp := do(t, http.MethodGet, ts.URL+"/distance?s=0&t=3", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("after the slot freed: status %d, want 200", resp.StatusCode)
	}
}

// TestShedUnderConcurrentLoad hammers a capped server from many
// goroutines and checks the accounting invariant the saturation
// loadtest relies on: every response is a 200 or a 429, the 429 count
// matches the shed counter, and nothing deadlocks under -race.
func TestShedUnderConcurrentLoad(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ix, Config{MaxInflight: 2})

	const workers, perWorker = 8, 25
	var ok200, shed429, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(ts.URL + "/distance?s=0&t=9")
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1)
						continue
					}
					shed429.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor header-complete 429", other.Load())
	}
	if total := ok200.Load() + shed429.Load(); total != workers*perWorker {
		t.Fatalf("accounted responses = %d, want %d", total, workers*perWorker)
	}
	if got := s.stack.admit.shedConcurrency(); got != shed429.Load() {
		t.Fatalf("shed counter = %d, observed 429s = %d", got, shed429.Load())
	}
	if s.InflightRequests() != 0 {
		t.Fatalf("in-flight = %d after the load drained, want 0", s.InflightRequests())
	}
}

// TestRequestLogSampling wires a capturing slog.Logger with LogEvery 2
// and checks exactly every second request emits one structured line
// carrying the endpoint and status attributes.
func TestRequestLogSampling(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &buf, mu: &mu}, nil))
	_, ts := newTestServer(t, ix, Config{LogEvery: 2, Logger: logger})

	for i := 0; i < 4; i++ {
		getJSON(t, ts.URL+"/distance?s=0&t=3", http.StatusOK, nil)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := 0
	for _, l := range bytes.Split([]byte(out), []byte("\n")) {
		if len(l) > 0 {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("LogEvery=2 over 4 requests logged %d lines, want 2:\n%s", lines, out)
	}
	for _, want := range []string{"endpoint=distance", "status=200", "method=GET"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// syncWriter serializes concurrent handler writes into one buffer.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
