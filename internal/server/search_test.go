package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"pll/pll"
)

// bruteSearchRow derives expected search answers from a ground-truth
// distance row (see the conformance suite for how rows are produced).
func bruteSearchRow(row []int64, s int32, radius int64, k int, members map[int32]bool) []pll.Neighbor {
	var out []pll.Neighbor
	for v, d := range row {
		if int32(v) == s || d < 0 {
			continue
		}
		if radius >= 0 && d > radius {
			continue
		}
		if members != nil && !members[int32(v)] {
			continue
		}
		out = append(out, pll.Neighbor{Vertex: int32(v), Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func neighborsMatch(got, want []pll.Neighbor) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// checkSearchVariant drives /knn, /range and /nearest for one variant
// and compares every answer with the BFS/Dijkstra ground truth.
func checkSearchVariant(t *testing.T, tc variantCase) {
	t.Helper()
	_, ts := newTestServer(t, tc.oracle, Config{})
	members := make([]int32, 0, tc.n/3+1)
	inSet := map[int32]bool{}
	for v := 0; v < tc.n; v += 3 {
		members = append(members, int32(v))
		inSet[int32(v)] = true
	}
	for _, src := range []int32{0, int32(tc.n / 2), int32(tc.n - 1)} {
		row := tc.dist(src)
		for _, k := range []int{1, 4, tc.n} {
			var kr struct {
				Count     int            `json:"count"`
				Neighbors []pll.Neighbor `json:"neighbors"`
			}
			getJSON(t, fmt.Sprintf("%s/knn?s=%d&k=%d", ts.URL, src, k), http.StatusOK, &kr)
			want := bruteSearchRow(row, src, -1, k, nil)
			if kr.Count != len(want) || !neighborsMatch(kr.Neighbors, want) {
				t.Fatalf("%s: /knn s=%d k=%d = %v, want %v", tc.name, src, k, kr.Neighbors, want)
			}

			var nr struct {
				SetSize   int            `json:"set_size"`
				Neighbors []pll.Neighbor `json:"neighbors"`
			}
			postJSON(t, ts.URL+"/nearest", nearestRequest{Source: src, Set: members, K: k},
				http.StatusOK, &nr)
			wantIn := bruteSearchRow(row, src, -1, k, inSet)
			if nr.SetSize != len(members) || !neighborsMatch(nr.Neighbors, wantIn) {
				t.Fatalf("%s: /nearest s=%d k=%d = %v, want %v", tc.name, src, k, nr.Neighbors, wantIn)
			}
		}
		for _, radius := range []int64{0, 2, 6} {
			var rr struct {
				Truncated bool           `json:"truncated"`
				Neighbors []pll.Neighbor `json:"neighbors"`
			}
			getJSON(t, fmt.Sprintf("%s/range?s=%d&r=%d", ts.URL, src, radius), http.StatusOK, &rr)
			want := bruteSearchRow(row, src, radius, 0, nil)
			if rr.Truncated || !neighborsMatch(rr.Neighbors, want) {
				t.Fatalf("%s: /range s=%d r=%d = %v (truncated=%v), want %v",
					tc.name, src, radius, rr.Neighbors, rr.Truncated, want)
			}
		}
	}
}

// TestSearchConformanceHandlers runs the search ground-truth checks
// through the HTTP handlers for every searchable variant, both
// heap-built and memory-mapped (with and without persisted search
// sections).
func TestSearchConformanceHandlers(t *testing.T) {
	const (
		n    = 54
		m    = 140
		seed = 19
	)
	cases := []variantCase{
		undirectedCase(t, n, m, seed),
		directedCase(t, n, m, seed, false),
		weightedCase(t, n, m, seed, false),
	}
	for _, base := range cases {
		cases = append(cases, flatVariant(t, base, false))
	}
	// A flat container with the persisted inverted index must answer
	// identically through the handlers too.
	und := undirectedCase(t, n, m, seed+1)
	persisted := flatSearchVariant(t, und)
	cases = append(cases, persisted)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkSearchVariant(t, tc) })
	}
}

// flatSearchVariant round-trips an oracle through WriteFlatFile with
// FlatSearch + Open, so handler checks run against the persisted
// inverted sections.
func flatSearchVariant(t *testing.T, base variantCase) variantCase {
	t.Helper()
	path := t.TempDir() + "/" + base.name + ".search.pllbox"
	if err := pll.WriteFlatFile(path, base.oracle, pll.FlatSearch()); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fi.Close() })
	out := base
	out.name = "flat-search-" + base.name
	out.oracle = fi
	out.hop = nil
	return out
}

// TestSearchHandlerHardening pins the hostile-input behavior: fan-out
// and body caps reject with 4xx before any work happens, and a served
// dynamic index reports 409 for search queries.
func TestSearchHandlerHardening(t *testing.T) {
	tc := undirectedCase(t, 30, 60, 23)
	_, ts := newTestServer(t, tc.oracle, Config{MaxBatch: 16, MaxBody: 256})

	// /knn fan-out and parameter validation.
	getJSON(t, ts.URL+"/knn?s=0&k=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/knn?s=0&k=17", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/knn?s=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/knn?s=999&k=3", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/knn?s=zero&k=3", http.StatusBadRequest, nil)

	// /range validation, limit cap and truncation marker.
	getJSON(t, ts.URL+"/range?s=0&r=-1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/range?s=0&r=2&limit=17", http.StatusBadRequest, nil)
	var rr struct {
		Truncated bool           `json:"truncated"`
		Neighbors []pll.Neighbor `json:"neighbors"`
	}
	getJSON(t, ts.URL+"/range?s=0&r=100&limit=1", http.StatusOK, &rr)
	if !rr.Truncated || len(rr.Neighbors) != 1 {
		t.Fatalf("limit=1 range: %d results, truncated=%v", len(rr.Neighbors), rr.Truncated)
	}
	// Radii are int64: weighted deployments can exceed int32.
	getJSON(t, ts.URL+"/range?s=0&r=3000000000&limit=2", http.StatusOK, &rr)

	// /nearest set and k caps.
	postJSON(t, ts.URL+"/nearest", nearestRequest{Source: 0, Set: nil, K: 2}, http.StatusBadRequest, nil)
	big := make([]int32, 17)
	postJSON(t, ts.URL+"/nearest", nearestRequest{Source: 0, Set: big, K: 2}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/nearest", nearestRequest{Source: 0, Set: []int32{1, 99}, K: 2}, http.StatusBadRequest, nil)

	// Body-size cap: an oversized payload dies with 413 on every POST
	// endpoint, independent of its JSON content.
	huge := append(append([]byte(`{"source":0,"k":1,"edges":[],"set":[1`), bytes.Repeat([]byte(",1"), 300)...), []byte("]}")...)
	for _, ep := range []string{"/nearest", "/batch", "/update"} {
		resp, err := http.Post(ts.URL+ep, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with a %d-byte body: status %d, want 413", ep, len(huge), resp.StatusCode)
		}
	}

	// A live dynamic index cannot search: 409, not 500.
	dyn := dynamicCase(t, 30, 60, 23)
	_, dts := newTestServer(t, dyn.oracle, Config{})
	getJSON(t, dts.URL+"/knn?s=0&k=3", http.StatusConflict, nil)
	getJSON(t, dts.URL+"/range?s=0&r=2", http.StatusConflict, nil)
	postJSON(t, dts.URL+"/nearest", nearestRequest{Source: 0, Set: []int32{1, 2}, K: 1}, http.StatusConflict, nil)
}
