package server

// Search endpoints over the Searcher capability: /knn, /range and
// /nearest answer neighborhood queries straight from the served
// index's inverted labels. Every fan-out knob a client controls — k,
// the range result count, the POI set size — is capped by
// Config.MaxBatch, and /nearest bodies by Config.MaxBody, so hostile
// requests fail fast with a 4xx instead of forcing unbounded work.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pll/internal/trace"
	"pll/pll"
)

// queryInt32 parses one required int32 query parameter.
func queryInt32(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return int32(v), nil
}

// queryInt64 parses one required int64 query parameter (weighted radii
// can exceed int32).
func queryInt64(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

// checkFanout bounds a client-controlled count by MaxBatch.
func (s *Server) checkFanout(w http.ResponseWriter, name string, v int) bool {
	if v < 1 || v > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "%s=%d outside [1,%d]", name, v, s.cfg.MaxBatch)
		return false
	}
	return true
}

// searchView runs f against the current snapshot's Searcher, mapping
// the standard failure modes: 400 for bad vertices or sets, 409 when
// the served index cannot search (a live dynamic index).
func (s *Server) searchView(w http.ResponseWriter, src int32, f func(sr pll.Searcher) error) bool {
	var badInput bool
	err := s.oracle.View(func(o pll.Oracle) error {
		if err := pll.Validate(o, src); err != nil {
			badInput = true
			return err
		}
		sr, ok := o.(pll.Searcher)
		if !ok {
			return pll.ErrNoSearch
		}
		return f(sr)
	})
	switch {
	case err == nil:
		s.searches.Add(1)
		return true
	case badInput:
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, pll.ErrNoSearch):
		// Deliberately no Stats() call here: naming the variant would
		// scan the whole index under the dynamic read lock on every
		// rejected request.
		writeError(w, http.StatusConflict, "served index does not support search queries (a live dynamic index cannot be inverted; serve a frozen snapshot)")
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
	return false
}

// neighborsOrEmpty keeps "neighbors" a JSON array even with no hits.
func neighborsOrEmpty(ns []pll.Neighbor) []pll.Neighbor {
	if ns == nil {
		return []pll.Neighbor{}
	}
	return ns
}

// handleKNN answers GET /knn?s=V&k=N: the k nearest vertices to s,
// sorted by (distance, vertex), ties at the cutoff resolved to the
// smallest IDs.
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	sv, err := queryInt32(r, "s")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt32(r, "k")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkFanout(w, "k", int(k)) {
		return
	}
	// kNN answers are deterministic for a fixed index, so the marshaled
	// response is cached whole, keyed by the canonical (s, k) pair;
	// /update and /reload purge it.
	p := trace.ProfileFromContext(r.Context())
	key := queryCacheKeyKNN(sv, k)
	if body, ok := s.results.get("knn", key); ok {
		p.CacheLookup(true)
		s.searches.Add(1)
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	p.CacheLookup(false)
	epoch := s.results.currentEpoch()
	var res []pll.Neighbor
	if !s.searchView(w, sv, func(sr pll.Searcher) error {
		var err error
		if sp, ok := sr.(pll.SearchProfiler); ok {
			res, err = sp.KNNProfiled(sv, int(k), p)
		} else {
			res, err = sr.KNN(sv, int(k))
		}
		return err
	}) {
		return
	}
	body, err := marshalResponse(map[string]any{
		"s":         sv,
		"k":         k,
		"count":     len(res),
		"neighbors": neighborsOrEmpty(res),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.results.put(epoch, key, body)
	writeJSONBytes(w, http.StatusOK, body)
}

// handleRange answers GET /range?s=V&r=D[&limit=N]: every vertex
// within distance r of s, nearest first, truncated to limit (default
// and maximum: MaxBatch) with a "truncated" marker and a "total"
// within-radius count ("total_exact" says whether the scan completed
// or total is only a lower bound).
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	sv, err := queryInt32(r, "s")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := queryInt64(r, "r")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if radius < 0 {
		writeError(w, http.StatusBadRequest, "r=%d must be non-negative", radius)
		return
	}
	limit := s.cfg.MaxBatch
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		if !s.checkFanout(w, "limit", v) {
			return
		}
		limit = v
	}
	// Answer through KNN(limit+1) rather than Range: results sort by
	// (distance, vertex), so the within-radius vertices are exactly a
	// prefix — cutting at the radius yields the first `limit` of the
	// full range answer plus an exact truncation marker, while the
	// top-k pruning keeps the work bounded by the limit instead of by
	// however many vertices a hostile radius covers.
	p := trace.ProfileFromContext(r.Context())
	var res []pll.Neighbor
	if !s.searchView(w, sv, func(sr pll.Searcher) error {
		var got []pll.Neighbor
		var err error
		if sp, ok := sr.(pll.SearchProfiler); ok {
			got, err = sp.KNNProfiled(sv, limit+1, p)
		} else {
			got, err = sr.KNN(sv, limit+1)
		}
		if err != nil {
			return err
		}
		for _, nb := range got {
			if nb.Distance > radius {
				break
			}
			res = append(res, nb)
		}
		return nil
	}) {
		return
	}
	// total counts the within-radius vertices before the limit cut: when
	// the scan completed (fewer than limit+1 hits inside the radius) it
	// is exact; when truncated, limit+1 hits were seen, so total is a
	// lower bound and total_exact is false.
	total := len(res)
	truncated := false
	if len(res) > limit {
		res = res[:limit]
		truncated = true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"s":           sv,
		"radius":      radius,
		"count":       len(res),
		"total":       total,
		"total_exact": !truncated,
		"truncated":   truncated,
		"neighbors":   neighborsOrEmpty(res),
	})
}

// nearestRequest asks for the k members of a vertex set nearest to
// source: POST /nearest {"source": 0, "set": [3, 17, 29], "k": 2}.
// The set is registered per request against the current snapshot;
// clients with a stable POI list and an embedded oracle should
// register once with NewVertexSet instead.
type nearestRequest struct {
	Source int32   `json:"source"`
	Set    []int32 `json:"set"`
	K      int     `json:"k"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	var req nearestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Set) == 0 {
		writeError(w, http.StatusBadRequest, `nearest body needs a non-empty "set"`)
		return
	}
	if !s.checkFanout(w, "set size", len(req.Set)) || !s.checkFanout(w, "k", req.K) {
		return
	}
	var res []pll.Neighbor
	var size int
	if !s.searchView(w, req.Source, func(sr pll.Searcher) error {
		set, err := sr.NewVertexSet(req.Set)
		if err != nil {
			return err
		}
		size = set.Size()
		res, err = sr.NearestIn(req.Source, set, req.K)
		return err
	}) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"source":    req.Source,
		"k":         req.K,
		"set_size":  size,
		"count":     len(res),
		"neighbors": neighborsOrEmpty(res),
	})
}
