package server

// GET /metrics: the Prometheus-text-format scrape surface, stdlib
// only. Per-endpoint request counters and latency histograms come from
// the middleware in middleware.go; cache and admission series read the
// existing counters; the index gauges (label sizes — the expected
// merge length of a Distance call — and hub occupancy) come from
// pll.Stats, cached per (generation, update-count) so a 15-second
// scrape interval never pays the O(n) label scan twice for the same
// index.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pll/pll"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to a saturated multi-second tail.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation: each bucket holds its own (non-cumulative) count, the
// cumulative sums Prometheus wants are computed at scrape time. It is
// exported so components mounting a Stack (the cluster coordinator's
// per-backend series) share one bucket layout across every scrape
// surface.
type Histogram struct {
	buckets [len(latencyBuckets)]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	for i := range latencyBuckets {
		if sec <= latencyBuckets[i] {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// WriteSeries emits the histogram in Prometheus text format under the
// given metric name with the given label set (e.g. `endpoint="knn"`),
// cumulative buckets plus _sum and _count. The caller emits the HELP
// and TYPE lines once per family.
func (h *Histogram) WriteSeries(w io.Writer, metric, labels string) {
	cum := int64(0)
	for i := range latencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", metric, labels, fmtFloat(latencyBuckets[i]), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", metric, labels, count)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", metric, labels, fmtFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count{%s} %d\n", metric, labels, count)
}

// statusClasses indexes response-code classes 1xx..5xx (slot 0 unused).
const statusClasses = 6

// endpointMetrics is one endpoint's request tally: responses by status
// class plus the latency histogram over every response.
type endpointMetrics struct {
	codes [statusClasses]atomic.Int64
	hist  Histogram
}

func (m *endpointMetrics) observe(status int, d time.Duration) {
	if c := status / 100; c >= 1 && c < statusClasses {
		m.codes[c].Add(1)
	}
	m.hist.Observe(d)
}

// metrics holds the per-endpoint series. The endpoint set is fixed at
// construction (every series exists from the first scrape, so rates
// never jump from absent to nonzero).
type metrics struct {
	endpoints map[string]*endpointMetrics
	names     []string // sorted, for deterministic emission
}

func newMetrics(names ...string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.endpoints[n] = &endpointMetrics{}
		m.names = append(m.names, n)
	}
	sort.Strings(m.names)
	return m
}

// statsCache memoizes the served index's pll.Stats keyed by the
// (generation, update-count) pair that invalidates them: Stats scans
// every label, which a mapped multi-gigabyte index should not repeat
// on each scrape.
type statsCache struct {
	mu    sync.Mutex
	key   [2]uint64
	st    pll.Stats
	valid bool
}

// cachedStats returns the served index's stats, recomputing only after
// a reload or update changed them.
func (s *Server) cachedStats() pll.Stats {
	key := [2]uint64{s.oracle.Generation(), uint64(s.updates.Load())}
	c := &s.statsCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid || c.key != key {
		c.st = s.oracle.Stats()
		c.key = key
		c.valid = true
	}
	return c.st
}

// fmtFloat renders a float the way Prometheus clients expect.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	// The request/latency/shed/in-flight families come from the shared
	// middleware stack; everything below is Server-specific.
	s.stack.WriteMetrics(w)

	hits, misses := s.cache.counters()
	fmt.Fprintf(w, "# HELP pll_cache_hits_total Cache hits by cache (pair = /distance, knn and query = result bodies).\n")
	fmt.Fprintf(w, "# TYPE pll_cache_hits_total counter\n")
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"pair\"} %d\n", hits)
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"knn\"} %d\n", s.results.hitCount("knn"))
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"query\"} %d\n", s.results.hitCount("query"))
	fmt.Fprintf(w, "# HELP pll_cache_misses_total Cache misses by cache.\n")
	fmt.Fprintf(w, "# TYPE pll_cache_misses_total counter\n")
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"pair\"} %d\n", misses)
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"knn\"} %d\n", s.results.missCount("knn"))
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"query\"} %d\n", s.results.missCount("query"))
	fmt.Fprintf(w, "# HELP pll_cache_entries Entries resident by cache.\n")
	fmt.Fprintf(w, "# TYPE pll_cache_entries gauge\n")
	fmt.Fprintf(w, "pll_cache_entries{cache=\"pair\"} %d\n", s.cache.len())
	fmt.Fprintf(w, "pll_cache_entries{cache=\"result\"} %d\n", s.results.len())
	fmt.Fprintf(w, "# HELP pll_cache_capacity Effective capacity by cache (configured size rounded up to whole shards).\n")
	fmt.Fprintf(w, "# TYPE pll_cache_capacity gauge\n")
	fmt.Fprintf(w, "pll_cache_capacity{cache=\"pair\"} %d\n", s.cache.capacity())
	fmt.Fprintf(w, "pll_cache_capacity{cache=\"result\"} %d\n", s.results.capacity())

	st := s.cachedStats()
	for _, g := range []struct {
		name, help string
		value      string
	}{
		{"pll_index_vertices", "Vertices in the served index.", strconv.Itoa(st.NumVertices)},
		{"pll_index_bit_parallel_roots", "Bit-parallel roots in the served index.", strconv.Itoa(st.NumBitParallel)},
		{"pll_index_label_entries", "Normal label entries over all vertices.", strconv.FormatInt(st.TotalLabelEntries, 10)},
		{"pll_index_avg_label_size", "Average per-vertex label size: the expected merge length of one Distance call is twice this.", fmtFloat(st.AvgLabelSize)},
		{"pll_index_max_label_size", "Largest per-vertex label: the worst-case merge length.", strconv.Itoa(st.MaxLabelSize)},
		{"pll_index_bytes", "Estimated in-memory footprint of label and bit-parallel arrays.", strconv.FormatInt(st.IndexBytes, 10)},
		{"pll_index_hubs_distinct", "Hubs carried by at least one label entry.", strconv.Itoa(st.DistinctHubs)},
		{"pll_index_hub_load_max", "Label entries carried by the most loaded hub.", strconv.Itoa(st.MaxHubLoad)},
		{"pll_index_hub_load_avg", "Label entries per occupied hub.", fmtFloat(st.AvgHubLoad)},
		{"pll_index_generation", "Completed index hot-swaps.", strconv.FormatUint(s.oracle.Generation(), 10)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, g.value)
	}

	fmt.Fprintf(w, "# HELP pll_reloads_total Successful index hot-swaps.\n")
	fmt.Fprintf(w, "# TYPE pll_reloads_total counter\n")
	fmt.Fprintf(w, "pll_reloads_total %d\n", s.reloads.Load())
	fmt.Fprintf(w, "# HELP pll_updates_total Edges inserted through /update.\n")
	fmt.Fprintf(w, "# TYPE pll_updates_total counter\n")
	fmt.Fprintf(w, "pll_updates_total %d\n", s.updates.Load())
	fmt.Fprintf(w, "# HELP pll_uptime_seconds Seconds since the server was constructed.\n")
	fmt.Fprintf(w, "# TYPE pll_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pll_uptime_seconds %s\n", fmtFloat(time.Since(s.start).Seconds()))
}

// MetricsHandler returns the bare /metrics handler for mounting on an
// admin listener (cmd/pllserved -pprof), bypassing admission control
// so the scrape keeps working while the serving listener sheds load.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}
