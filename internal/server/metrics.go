package server

// GET /metrics: the Prometheus-text-format scrape surface, stdlib
// only. Per-endpoint request counters and latency histograms come from
// the middleware in middleware.go; cache and admission series read the
// existing counters; the index gauges (label sizes — the expected
// merge length of a Distance call — and hub occupancy) come from
// pll.Stats, cached per (generation, update-count) so a 15-second
// scrape interval never pays the O(n) label scan twice for the same
// index.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pll/pll"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to a saturated multi-second tail.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation: each bucket holds its own (non-cumulative) count, the
// cumulative sums Prometheus wants are computed at scrape time.
type histogram struct {
	buckets [len(latencyBuckets)]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	for i := range latencyBuckets {
		if sec <= latencyBuckets[i] {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// statusClasses indexes response-code classes 1xx..5xx (slot 0 unused).
const statusClasses = 6

// endpointMetrics is one endpoint's request tally: responses by status
// class plus the latency histogram over every response.
type endpointMetrics struct {
	codes [statusClasses]atomic.Int64
	hist  histogram
}

func (m *endpointMetrics) observe(status int, d time.Duration) {
	if c := status / 100; c >= 1 && c < statusClasses {
		m.codes[c].Add(1)
	}
	m.hist.observe(d)
}

// metrics holds the per-endpoint series. The endpoint set is fixed at
// construction (every series exists from the first scrape, so rates
// never jump from absent to nonzero).
type metrics struct {
	endpoints map[string]*endpointMetrics
	names     []string // sorted, for deterministic emission
}

func newMetrics(names ...string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.endpoints[n] = &endpointMetrics{}
		m.names = append(m.names, n)
	}
	sort.Strings(m.names)
	return m
}

// statsCache memoizes the served index's pll.Stats keyed by the
// (generation, update-count) pair that invalidates them: Stats scans
// every label, which a mapped multi-gigabyte index should not repeat
// on each scrape.
type statsCache struct {
	mu    sync.Mutex
	key   [2]uint64
	st    pll.Stats
	valid bool
}

// cachedStats returns the served index's stats, recomputing only after
// a reload or update changed them.
func (s *Server) cachedStats() pll.Stats {
	key := [2]uint64{s.oracle.Generation(), uint64(s.updates.Load())}
	c := &s.statsCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid || c.key != key {
		c.st = s.oracle.Stats()
		c.key = key
		c.valid = true
	}
	return c.st
}

// fmtFloat renders a float the way Prometheus clients expect.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP pll_http_requests_total HTTP responses by endpoint and status-code class.\n")
	fmt.Fprintf(w, "# TYPE pll_http_requests_total counter\n")
	for _, name := range s.metrics.names {
		em := s.metrics.endpoints[name]
		for c := 1; c < statusClasses; c++ {
			fmt.Fprintf(w, "pll_http_requests_total{endpoint=%q,code=\"%dxx\"} %d\n", name, c, em.codes[c].Load())
		}
	}

	fmt.Fprintf(w, "# HELP pll_http_request_duration_seconds Request latency by endpoint, admission rejections included.\n")
	fmt.Fprintf(w, "# TYPE pll_http_request_duration_seconds histogram\n")
	for _, name := range s.metrics.names {
		h := &s.metrics.endpoints[name].hist
		cum := int64(0)
		for i := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "pll_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", name, fmtFloat(latencyBuckets[i]), cum)
		}
		count := h.count.Load()
		fmt.Fprintf(w, "pll_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(w, "pll_http_request_duration_seconds_sum{endpoint=%q} %s\n", name, fmtFloat(float64(h.sumNs.Load())/1e9))
		fmt.Fprintf(w, "pll_http_request_duration_seconds_count{endpoint=%q} %d\n", name, count)
	}

	fmt.Fprintf(w, "# HELP pll_http_requests_in_flight Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE pll_http_requests_in_flight gauge\n")
	fmt.Fprintf(w, "pll_http_requests_in_flight %d\n", s.active.Load())

	fmt.Fprintf(w, "# HELP pll_http_shed_total Requests rejected with 429 by the admission layer.\n")
	fmt.Fprintf(w, "# TYPE pll_http_shed_total counter\n")
	fmt.Fprintf(w, "pll_http_shed_total{reason=\"concurrency\"} %d\n", s.admit.shedConcurrency())
	fmt.Fprintf(w, "pll_http_shed_total{reason=\"rate\"} %d\n", s.admit.shedRate())

	fmt.Fprintf(w, "# HELP pll_ratelimit_clients Client token buckets currently tracked.\n")
	fmt.Fprintf(w, "# TYPE pll_ratelimit_clients gauge\n")
	fmt.Fprintf(w, "pll_ratelimit_clients %d\n", s.admit.trackedClients())

	hits, misses := s.cache.counters()
	fmt.Fprintf(w, "# HELP pll_cache_hits_total Cache hits by cache (pair = /distance, knn and query = result bodies).\n")
	fmt.Fprintf(w, "# TYPE pll_cache_hits_total counter\n")
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"pair\"} %d\n", hits)
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"knn\"} %d\n", s.results.hitCount("knn"))
	fmt.Fprintf(w, "pll_cache_hits_total{cache=\"query\"} %d\n", s.results.hitCount("query"))
	fmt.Fprintf(w, "# HELP pll_cache_misses_total Cache misses by cache.\n")
	fmt.Fprintf(w, "# TYPE pll_cache_misses_total counter\n")
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"pair\"} %d\n", misses)
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"knn\"} %d\n", s.results.missCount("knn"))
	fmt.Fprintf(w, "pll_cache_misses_total{cache=\"query\"} %d\n", s.results.missCount("query"))
	fmt.Fprintf(w, "# HELP pll_cache_entries Entries resident by cache.\n")
	fmt.Fprintf(w, "# TYPE pll_cache_entries gauge\n")
	fmt.Fprintf(w, "pll_cache_entries{cache=\"pair\"} %d\n", s.cache.len())
	fmt.Fprintf(w, "pll_cache_entries{cache=\"result\"} %d\n", s.results.len())
	fmt.Fprintf(w, "# HELP pll_cache_capacity Effective capacity by cache (configured size rounded up to whole shards).\n")
	fmt.Fprintf(w, "# TYPE pll_cache_capacity gauge\n")
	fmt.Fprintf(w, "pll_cache_capacity{cache=\"pair\"} %d\n", s.cache.capacity())
	fmt.Fprintf(w, "pll_cache_capacity{cache=\"result\"} %d\n", s.results.capacity())

	st := s.cachedStats()
	for _, g := range []struct {
		name, help string
		value      string
	}{
		{"pll_index_vertices", "Vertices in the served index.", strconv.Itoa(st.NumVertices)},
		{"pll_index_bit_parallel_roots", "Bit-parallel roots in the served index.", strconv.Itoa(st.NumBitParallel)},
		{"pll_index_label_entries", "Normal label entries over all vertices.", strconv.FormatInt(st.TotalLabelEntries, 10)},
		{"pll_index_avg_label_size", "Average per-vertex label size: the expected merge length of one Distance call is twice this.", fmtFloat(st.AvgLabelSize)},
		{"pll_index_max_label_size", "Largest per-vertex label: the worst-case merge length.", strconv.Itoa(st.MaxLabelSize)},
		{"pll_index_bytes", "Estimated in-memory footprint of label and bit-parallel arrays.", strconv.FormatInt(st.IndexBytes, 10)},
		{"pll_index_hubs_distinct", "Hubs carried by at least one label entry.", strconv.Itoa(st.DistinctHubs)},
		{"pll_index_hub_load_max", "Label entries carried by the most loaded hub.", strconv.Itoa(st.MaxHubLoad)},
		{"pll_index_hub_load_avg", "Label entries per occupied hub.", fmtFloat(st.AvgHubLoad)},
		{"pll_index_generation", "Completed index hot-swaps.", strconv.FormatUint(s.oracle.Generation(), 10)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, g.value)
	}

	fmt.Fprintf(w, "# HELP pll_reloads_total Successful index hot-swaps.\n")
	fmt.Fprintf(w, "# TYPE pll_reloads_total counter\n")
	fmt.Fprintf(w, "pll_reloads_total %d\n", s.reloads.Load())
	fmt.Fprintf(w, "# HELP pll_updates_total Edges inserted through /update.\n")
	fmt.Fprintf(w, "# TYPE pll_updates_total counter\n")
	fmt.Fprintf(w, "pll_updates_total %d\n", s.updates.Load())
	fmt.Fprintf(w, "# HELP pll_uptime_seconds Seconds since the server was constructed.\n")
	fmt.Fprintf(w, "# TYPE pll_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pll_uptime_seconds %s\n", fmtFloat(time.Since(s.start).Seconds()))
}

// MetricsHandler returns the bare /metrics handler for mounting on an
// admin listener (cmd/pllserved -pprof), bypassing admission control
// so the scrape keeps working while the serving listener sheds load.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}
