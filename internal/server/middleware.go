package server

// Per-endpoint middleware: instrument() records every response in the
// endpoint's counters and latency histogram and emits the sampled
// structured request log; guarded() adds admission control in front
// (rate limit, then the global concurrency cap). /healthz and /metrics
// stay instrument-only so liveness probes and scrapes keep answering
// while the query surface sheds load.

import (
	"log/slog"
	"net/http"
	"time"
)

// statusWriter captures the response status for the metrics and log
// layers. Handlers that never call WriteHeader answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps h with the observability layer for the named
// endpoint: status-class counters, the latency histogram, and sampled
// request logging.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		d := time.Since(start)
		em.observe(status, d)
		s.logRequest(name, r, status, d)
	}
}

// guarded is instrument plus admission control: requests the limiter
// or the concurrency cap rejects answer 429 with a Retry-After header
// and are recorded like any other response of the endpoint.
func (s *Server) guarded(name string, h http.HandlerFunc) http.HandlerFunc {
	admitted := func(w http.ResponseWriter, r *http.Request) {
		release, retryAfter, reason := s.admit.acquire(clientKey(r))
		if release == nil {
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusTooManyRequests, "server over capacity (%s); retry after %ss", reason, retryAfter)
			return
		}
		defer release()
		h(w, r)
	}
	return s.instrument(name, admitted)
}

// logRequest emits one structured line for every LogEvery-th request;
// LogEvery <= 0 disables logging entirely.
func (s *Server) logRequest(name string, r *http.Request, status int, d time.Duration) {
	every := int64(s.cfg.LogEvery)
	if every <= 0 || s.logSeq.Add(1)%every != 0 {
		return
	}
	logger := s.cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("endpoint", name),
		slog.String("method", r.Method),
		slog.String("path", r.URL.RequestURI()),
		slog.Int("status", status),
		slog.Duration("duration", d),
		slog.String("client", clientKey(r)),
		slog.Int64("inflight", s.active.Load()),
		slog.Int64("sampled_1_in", every),
	)
}
