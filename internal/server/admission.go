package server

// Admission control: the two bounds that keep an abusive or merely
// overloaded client population from collapsing the serving tier.
//
//   - A per-client token bucket (keyed by X-Client-Id when the caller
//     sends one, else the remote IP) caps the steady-state request
//     rate: one hot client cannot starve the rest.
//   - A global concurrency cap bounds the number of requests executing
//     at once: past it the server sheds with 429 instead of queueing,
//     so latency for admitted requests stays flat while excess load
//     fails fast and cheap (the shed path does no index work).
//
// Both rejections carry Retry-After. Either knob set to zero
// deactivates it; with both off, acquire degrades to a counter touch.

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxTrackedClients bounds the bucket map so a client-ID churn attack
// cannot grow it without bound; past it, buckets idle longer than
// bucketIdleEviction are swept, then arbitrary ones.
const (
	maxTrackedClients  = 65536
	bucketIdleEviction = time.Minute
)

// admission holds the rate-limiter state and the concurrency
// semaphore. The zero Config yields a no-op admission (nothing nil —
// the middleware always goes through it).
type admission struct {
	rate  float64 // tokens per second per client; 0 = unlimited
	burst float64
	sem   chan struct{} // concurrency slots; nil = uncapped

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	concurrencySheds atomic.Int64
	rateSheds        atomic.Int64

	// now is swapped in tests to drive refill deterministically.
	now func() time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(cfg StackConfig) *admission {
	a := &admission{rate: cfg.RatePerSec, now: time.Now}
	if a.rate > 0 {
		a.burst = float64(cfg.RateBurst)
		if a.burst <= 0 {
			a.burst = math.Max(1, math.Ceil(2*a.rate))
		}
		a.buckets = make(map[string]*tokenBucket)
	}
	if cfg.MaxInflight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return a
}

// acquire admits or rejects one request from the given client. On
// admission it returns the release function to defer; on rejection
// release is nil and retryAfter/reason fill the 429 response.
func (a *admission) acquire(client string) (release func(), retryAfter, reason string) {
	if a.rate > 0 {
		if wait, ok := a.takeToken(client); !ok {
			a.rateSheds.Add(1)
			return nil, strconv.Itoa(wait), "client rate limit"
		}
	}
	if a.sem != nil {
		select {
		case a.sem <- struct{}{}:
		default:
			a.concurrencySheds.Add(1)
			return nil, "1", "concurrency cap"
		}
		return func() { <-a.sem }, "", ""
	}
	return func() {}, "", ""
}

// takeToken refills the client's bucket for the elapsed time and takes
// one token; when empty it reports the whole seconds until the next
// token (at least 1) for Retry-After.
func (a *admission) takeToken(client string) (retryAfterSec int, ok bool) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		a.evictLocked(now)
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	} else {
		b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return int(math.Max(1, math.Ceil((1-b.tokens)/a.rate))), false
}

// evictLocked keeps the bucket map bounded: when full, drop buckets
// idle past the eviction window, then arbitrary ones. An evicted
// client merely restarts with a full burst — safe, just forgetful.
func (a *admission) evictLocked(now time.Time) {
	if len(a.buckets) < maxTrackedClients {
		return
	}
	for c, b := range a.buckets {
		if now.Sub(b.last) > bucketIdleEviction {
			delete(a.buckets, c)
		}
	}
	for c := range a.buckets {
		if len(a.buckets) < maxTrackedClients {
			break
		}
		delete(a.buckets, c)
	}
}

func (a *admission) shedConcurrency() int64 { return a.concurrencySheds.Load() }
func (a *admission) shedRate() int64        { return a.rateSheds.Load() }

func (a *admission) trackedClients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}

// clientKey identifies the caller for rate limiting and logging: an
// explicit X-Client-Id wins (callers behind one proxy IP can identify
// themselves), else the remote IP with the port stripped so one
// client's connections share a bucket.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
