package server

// End-to-end tracing middleware behavior on the replica server:
// traceparent propagation, X-Trace-Id / X-Request-Id echo (including
// on shed 429s), sampled traces landing in the /debug/traces ring with
// per-stage profile spans, and the shared trace counters surfacing on
// both /stats and /metrics.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"pll/pll"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// doGet issues a GET with extra headers and returns the response with
// its body fully read (so the test server connection is reusable).
func doGet(t *testing.T, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// traceTree mirrors the /debug/traces?id= response shape.
type traceTree struct {
	TraceID string `json:"trace_id"`
	Kind    string `json:"kind"`
	Spans   int    `json:"spans"`
	Root    *struct {
		Name     string            `json:"name"`
		Attrs    map[string]string `json:"attrs"`
		Children []struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		} `json:"children"`
	} `json:"root"`
}

func TestTraceparentHonoredIntoRing(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Sample rate zero: only the parent's sampled flag can force this
	// trace into the ring, which is exactly the propagation contract.
	_, ts := newTestServer(t, ix, Config{TraceSampleRate: 0})

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	resp, _ := doGet(t, ts.URL+"/distance?s=0&t=7", map[string]string{
		"traceparent": "00-" + tid + "-00f067aa0ba902b7-01",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want the propagated %q", got, tid)
	}

	var tree traceTree
	resp, body := doGet(t, ts.URL+"/debug/traces?id="+tid, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace lookup: status %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != tid || tree.Kind != "sampled" || tree.Root == nil {
		t.Fatalf("trace = %+v", tree)
	}
	if tree.Root.Name != "distance" {
		t.Fatalf("root span %q, want \"distance\"", tree.Root.Name)
	}
	if tree.Root.Attrs["status"] != "200" {
		t.Fatalf("root attrs = %v, want status=200", tree.Root.Attrs)
	}
	// The profiled oracle ran one label merge for the lookup; its stage
	// span must appear under the root.
	found := false
	for _, c := range tree.Root.Children {
		if c.Name == "label_merge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no label_merge stage span in %+v", tree.Root.Children)
	}
}

func TestMalformedTraceparentMintsFreshTrace(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{TraceSampleRate: 1})

	for _, bad := range []string{
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		resp, _ := doGet(t, ts.URL+"/distance?s=0&t=4", map[string]string{"traceparent": bad})
		got := resp.Header.Get("X-Trace-Id")
		if !hex32.MatchString(got) {
			t.Fatalf("traceparent %q: X-Trace-Id = %q, want 32 lowercase hex digits", bad, got)
		}
		if got == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("traceparent %q: adopted the trace id from a malformed header", bad)
		}
	}
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})

	// No client request ID: one is minted from the trace ID.
	resp, _ := doGet(t, ts.URL+"/distance?s=0&t=4", nil)
	if rid := resp.Header.Get("X-Request-Id"); rid == "" || rid != resp.Header.Get("X-Trace-Id") {
		t.Fatalf("minted X-Request-Id = %q, want the trace id %q", rid, resp.Header.Get("X-Trace-Id"))
	}

	// A client-supplied ID is echoed verbatim.
	resp, _ = doGet(t, ts.URL+"/distance?s=0&t=4", map[string]string{"X-Request-Id": "req-abc-123"})
	if rid := resp.Header.Get("X-Request-Id"); rid != "req-abc-123" {
		t.Fatalf("X-Request-Id = %q, want the client's req-abc-123", rid)
	}
}

func TestUnsampledRequestsStayOutOfRing(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{TraceSampleRate: 0})

	resp, _ := doGet(t, ts.URL+"/distance?s=0&t=4", nil)
	tid := resp.Header.Get("X-Trace-Id")
	if !hex32.MatchString(tid) {
		t.Fatalf("X-Trace-Id = %q even with sampling off, want a fresh id", tid)
	}
	resp, _ = doGet(t, ts.URL+"/debug/traces?id="+tid, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled trace lookup: status %d, want 404", resp.StatusCode)
	}

	var listing struct {
		Capacity int `json:"capacity"`
		Stored   int `json:"stored"`
	}
	getJSON(t, ts.URL+"/debug/traces", http.StatusOK, &listing)
	if listing.Stored != 0 || listing.Capacity == 0 {
		t.Fatalf("listing = %+v, want an empty ring with non-zero capacity", listing)
	}
}

func TestShedRequestCarriesTraceHeaders(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	// One-token bucket with a glacial refill: the second request sheds.
	_, ts := newTestServer(t, ix, Config{RatePerSec: 0.0001, RateBurst: 1})

	resp, _ := doGet(t, ts.URL+"/distance?s=0&t=4", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp, _ = doGet(t, ts.URL+"/distance?s=0&t=4", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if tid := resp.Header.Get("X-Trace-Id"); !hex32.MatchString(tid) {
		t.Fatalf("shed 429 X-Trace-Id = %q, want 32 hex digits", tid)
	}
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Fatal("shed 429 carries no X-Request-Id")
	}
}

func TestTraceStatsOnStatsAndMetrics(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{TraceSampleRate: 1, TraceRingSize: 16})

	doGet(t, ts.URL+"/distance?s=0&t=4", nil)
	doGet(t, ts.URL+"/distance?s=1&t=3", nil)

	var stats struct {
		Tracing struct {
			SampleRate   float64 `json:"sample_rate"`
			RingCapacity int     `json:"ring_capacity"`
			RingStored   int     `json:"ring_stored"`
			Sampled      int64   `json:"sampled"`
		} `json:"tracing"`
	}
	getJSON(t, ts.URL+"/stats", http.StatusOK, &stats)
	if stats.Tracing.SampleRate != 1 || stats.Tracing.RingCapacity != 16 {
		t.Fatalf("tracing stats = %+v", stats.Tracing)
	}
	if stats.Tracing.Sampled < 2 || stats.Tracing.RingStored < 2 {
		t.Fatalf("tracing stats = %+v, want at least the two sampled lookups", stats.Tracing)
	}

	_, body := doGet(t, ts.URL+"/metrics", nil)
	for _, series := range []string{
		"pll_trace_sampled_total",
		"pll_trace_dropped_total",
		"pll_trace_slow_total",
		"pll_trace_ring_traces",
		"pll_trace_ring_capacity 16",
		"pll_trace_sample_rate 1",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics is missing %q", series)
		}
	}
}
