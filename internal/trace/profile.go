package trace

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// QueryProfile accumulates the cheap per-stage counters of one
// request: admission wait, cache hit/miss, label-merge mass and
// duration in the distance engines, hub-run scan counts in the search
// engines. Fields are atomic because scatter legs and hedge attempts
// record from their own goroutines.
//
// Every method is safe on a nil receiver and does nothing — the
// engines call them unconditionally behind a single `p != nil` check
// at the capability boundary, so the untraced path stays allocation-
// free and branch-cheap.
//
// A profile is request-scoped: it travels in the request context and
// must not be stored past the handler's return (the pllvet
// profilescope analyzer enforces this).
type QueryProfile struct {
	admissionNs  atomic.Int64
	cacheLookups atomic.Int64
	cacheHits    atomic.Int64
	mergeCalls   atomic.Int64
	mergeEntries atomic.Int64
	mergeNs      atomic.Int64
	scanRuns     atomic.Int64
	scanItems    atomic.Int64
	scanNs       atomic.Int64
}

// AddAdmissionWait records time spent in the admission layer.
func (p *QueryProfile) AddAdmissionWait(d time.Duration) {
	if p == nil {
		return
	}
	p.admissionNs.Add(int64(d))
}

// CacheLookup records one cache probe and its outcome.
func (p *QueryProfile) CacheLookup(hit bool) {
	if p == nil {
		return
	}
	p.cacheLookups.Add(1)
	if hit {
		p.cacheHits.Add(1)
	}
}

// AddMerge records one label-merge engine call: how many label entries
// it merged and how long it ran.
func (p *QueryProfile) AddMerge(entries int64, d time.Duration) {
	if p == nil {
		return
	}
	p.mergeCalls.Add(1)
	p.mergeEntries.Add(entries)
	p.mergeNs.Add(int64(d))
}

// AddScan records one hub-run scan: runs seeded into the merge, items
// advanced, and the scan duration.
func (p *QueryProfile) AddScan(runs, items int64, d time.Duration) {
	if p == nil {
		return
	}
	p.scanRuns.Add(runs)
	p.scanItems.Add(items)
	p.scanNs.Add(int64(d))
}

// ProfileSnapshot is a point-in-time copy of a profile's counters.
type ProfileSnapshot struct {
	AdmissionNs  int64
	CacheLookups int64
	CacheHits    int64
	MergeCalls   int64
	MergeEntries int64
	MergeNs      int64
	ScanRuns     int64
	ScanItems    int64
	ScanNs       int64
}

// Snapshot copies the counters; nil on a nil profile.
func (p *QueryProfile) Snapshot() *ProfileSnapshot {
	if p == nil {
		return nil
	}
	return &ProfileSnapshot{
		AdmissionNs:  p.admissionNs.Load(),
		CacheLookups: p.cacheLookups.Load(),
		CacheHits:    p.cacheHits.Load(),
		MergeCalls:   p.mergeCalls.Load(),
		MergeEntries: p.mergeEntries.Load(),
		MergeNs:      p.mergeNs.Load(),
		ScanRuns:     p.scanRuns.Load(),
		ScanItems:    p.scanItems.Load(),
		ScanNs:       p.scanNs.Load(),
	}
}

// LogAttrs renders the nonzero stages for the slow-query log; nil
// profiles contribute nothing.
func (p *QueryProfile) LogAttrs() []slog.Attr {
	s := p.Snapshot()
	if s == nil {
		return nil
	}
	var out []slog.Attr
	if s.AdmissionNs > 0 {
		out = append(out, slog.Duration("admission_wait", time.Duration(s.AdmissionNs)))
	}
	if s.CacheLookups > 0 {
		out = append(out,
			slog.Int64("cache_lookups", s.CacheLookups),
			slog.Int64("cache_hits", s.CacheHits))
	}
	if s.MergeCalls > 0 {
		out = append(out,
			slog.Int64("merge_calls", s.MergeCalls),
			slog.Int64("merge_entries", s.MergeEntries),
			slog.Duration("merge_time", time.Duration(s.MergeNs)))
	}
	if s.ScanRuns > 0 || s.ScanItems > 0 {
		out = append(out,
			slog.Int64("scan_runs", s.ScanRuns),
			slog.Int64("scan_items", s.ScanItems),
			slog.Duration("scan_time", time.Duration(s.ScanNs)))
	}
	return out
}

// ctxKey keys the *Request in a request context.
type ctxKey struct{}

// NewContext returns ctx carrying the request's tracing state.
func NewContext(ctx context.Context, req *Request) context.Context {
	return context.WithValue(ctx, ctxKey{}, req)
}

// FromContext returns the request's tracing state, nil when the
// request is not traced (every Request method no-ops on nil).
func FromContext(ctx context.Context) *Request {
	req, _ := ctx.Value(ctxKey{}).(*Request)
	return req
}

// ProfileFromContext returns the request's stage-timer sink, nil when
// absent (every QueryProfile method no-ops on nil).
func ProfileFromContext(ctx context.Context) *QueryProfile {
	return FromContext(ctx).Profile()
}
