// Package trace is the serving tiers' distributed-tracing and
// per-query profiling layer, standard library only.
//
// One HTTP request becomes one Request: the middleware stack calls
// Tracer.StartRequest with the incoming W3C traceparent header (if
// any), threads the Request through the handler via the request
// context, and calls Finish with the final status. Three things can
// happen to the request's trace:
//
//   - Head-sampled (the parent's sampled flag, or the local
//     probabilistic decision when the request starts a new trace): a
//     full span tree is recorded — child spans for backend attempts,
//     stage spans synthesized from the QueryProfile — and committed to
//     the ring buffer.
//   - Promoted: an unsampled request that errored (5xx) or ran past
//     the slow-query threshold gets a trace synthesized from its
//     profile at Finish time, so the ring always holds the requests
//     worth explaining even at a 0% sampling rate.
//   - Dropped: everything else records nothing beyond the counters.
//
// The ring buffer is lock-free (atomic slot pointers plus an atomic
// write position) and serves the /debug/traces endpoint: the recent
// window, ?id= lookup, JSON span trees.
//
// Identifiers and sampling draw from one seeded splitmix64 sequence,
// so tests can fix the Seed and assert exact sampling decisions.
package trace

import (
	"sync/atomic"
	"time"
)

// FlagSampled is the traceparent flag bit requesting span recording.
const FlagSampled = 0x01

// Config tunes a Tracer. The zero value yields a tracer that never
// head-samples and never promotes slow requests — but still mints
// trace IDs (for X-Trace-Id correlation), honors an incoming sampled
// flag, and promotes errored requests.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] for
	// requests that arrive without a traceparent decision.
	SampleRate float64
	// SlowQuery promotes any request at least this slow into the ring
	// (and marks it for the slow-query log); 0 disables promotion.
	SlowQuery time.Duration
	// RingSize is the trace ring capacity (default 256).
	RingSize int
	// Seed fixes the splitmix64 sequence behind IDs and sampling; 0
	// seeds from the wall clock.
	Seed uint64
}

const defaultRingSize = 256

// Tracer is the per-process tracing state: sampling policy, the trace
// ring, and the sampled/dropped/slow counters. Safe for concurrent use.
type Tracer struct {
	rate      float64
	threshold uint64 // head-sample when next() < threshold
	slow      time.Duration
	ring      *Ring
	rng       rng

	sampled atomic.Int64 // traces committed with a full recorded span tree
	dropped atomic.Int64 // finished requests that recorded nothing
	slowHit atomic.Int64 // requests at or over the slow threshold
}

// New builds a Tracer; cfg fields at their zero values take the
// documented defaults.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	var threshold uint64
	switch {
	case rate >= 1:
		threshold = ^uint64(0)
	case rate > 0:
		// Map the rate onto the uint64 range; the float has 53
		// significant bits, plenty for a sampling probability.
		threshold = uint64(rate * float64(1<<63) * 2)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t := &Tracer{
		rate:      rate,
		threshold: threshold,
		slow:      cfg.SlowQuery,
		ring:      NewRing(cfg.RingSize),
	}
	t.rng.state.Store(seed)
	return t
}

// SampleRate returns the configured head-sampling probability.
func (t *Tracer) SampleRate() float64 { return t.rate }

// SlowThreshold returns the slow-query promotion threshold (0 =
// disabled).
func (t *Tracer) SlowThreshold() time.Duration { return t.slow }

// Slow reports whether a request of duration d crosses the slow-query
// threshold.
func (t *Tracer) Slow(d time.Duration) bool { return t.slow > 0 && d >= t.slow }

// Ring returns the trace ring (for /debug/traces and metrics).
func (t *Tracer) Ring() *Ring { return t.ring }

// Counters returns the lifetime totals: traces committed with a full
// span tree, finished requests that recorded nothing, and requests at
// or over the slow threshold.
func (t *Tracer) Counters() (sampled, dropped, slow int64) {
	return t.sampled.Load(), t.dropped.Load(), t.slowHit.Load()
}

// sampleHead makes one head-sampling decision.
func (t *Tracer) sampleHead() bool {
	if t.threshold == 0 {
		return false
	}
	if t.threshold == ^uint64(0) {
		return true
	}
	return t.rng.next() < t.threshold
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for {
		putUint64(id[0:8], t.rng.next())
		putUint64(id[8:16], t.rng.next())
		if !id.IsZero() {
			return id
		}
	}
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for {
		putUint64(id[:], t.rng.next())
		if !id.IsZero() {
			return id
		}
	}
}

// Request is one in-flight HTTP request's tracing state. All methods
// are safe on a nil receiver (they no-op), so instrumentation points
// never need to know whether tracing is active.
type Request struct {
	tracer *Tracer

	// TraceID identifies the request across tiers; it is echoed as
	// X-Trace-Id on every response whether or not spans are recorded.
	TraceID TraceID

	name         string
	remoteParent SpanID // parent span from the wire; zero when local root
	rootSpan     SpanID
	start        time.Time

	trace *Trace        // non-nil when recording a span tree
	prof  *QueryProfile // non-nil when stage timers are wanted
}

// StartRequest begins tracing one request named after its endpoint.
// A valid traceparent header joins the caller's trace and inherits its
// sampling decision; anything else starts a fresh trace with a local
// head-sampling decision. The profile is allocated only when it can be
// consumed (the request records spans, or slow-query promotion is on),
// so a fully disabled tracer keeps the hot path allocation-light.
func (t *Tracer) StartRequest(name, traceparent string) *Request {
	req := &Request{tracer: t, name: name, start: time.Now()}
	var record bool
	if tid, parent, flags, ok := ParseTraceparent(traceparent); ok {
		req.TraceID = tid
		req.remoteParent = parent
		record = flags&FlagSampled != 0
	} else {
		req.TraceID = t.newTraceID()
		record = t.sampleHead()
	}
	req.rootSpan = t.newSpanID()
	if record {
		req.trace = newTrace(req.TraceID, name, req.rootSpan, req.remoteParent, req.start)
	}
	if record || t.slow > 0 {
		req.prof = &QueryProfile{}
	}
	return req
}

// Profile returns the request's stage-timer sink, nil when neither
// recording nor slow-query promotion wants one. Callers pass it down
// without checking: every QueryProfile method no-ops on nil.
func (req *Request) Profile() *QueryProfile {
	if req == nil {
		return nil
	}
	return req.prof
}

// Recording reports whether the request records a full span tree.
func (req *Request) Recording() bool { return req != nil && req.trace != nil }

// StartSpan opens a child span under the request's root, returning nil
// (a valid no-op span) when the request is not recording.
func (req *Request) StartSpan(name string) *Span {
	if req == nil || req.trace == nil {
		return nil
	}
	return req.trace.root.newChild(name, req.tracer.newSpanID())
}

// Traceparent renders the header to forward downstream: the request's
// trace ID, sp (or the root span when sp is nil) as the parent, and
// the sampled flag matching this request's recording decision — so a
// replica behind a coordinator records exactly when the coordinator
// does.
func (req *Request) Traceparent(sp *Span) string {
	if req == nil {
		return ""
	}
	parent := req.rootSpan
	if sp != nil {
		parent = sp.id
	}
	var flags byte
	if req.trace != nil {
		flags = FlagSampled
	}
	return FormatTraceparent(req.TraceID, parent, flags)
}

// Finish completes the request: ends the root span, attaches the
// profile's stage spans, and commits the trace to the ring when the
// request was head-sampled — or synthesizes and commits one when an
// unsampled request errored (status >= 500) or crossed the slow
// threshold. Everything else just counts as dropped.
func (req *Request) Finish(status int, d time.Duration) {
	if req == nil {
		return
	}
	t := req.tracer
	isSlow := t.Slow(d)
	if isSlow {
		t.slowHit.Add(1)
	}
	kind := "sampled"
	switch {
	case status >= 500:
		kind = "error"
	case isSlow:
		kind = "slow"
	}
	switch {
	case req.trace != nil:
		req.trace.finish(status, d, req.prof, kind)
		t.ring.Put(req.trace)
		t.sampled.Add(1)
	case status >= 500 || isSlow:
		tr := newTrace(req.TraceID, req.name, req.rootSpan, req.remoteParent, req.start)
		tr.finish(status, d, req.prof, kind)
		t.ring.Put(tr)
	default:
		t.dropped.Add(1)
	}
}

// rng is a splitmix64 sequence on an atomic state: each next() is one
// atomic add plus the finalizer, cheap enough for the per-request path.
type rng struct {
	state atomic.Uint64
}

func (r *rng) next() uint64 {
	x := r.state.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
