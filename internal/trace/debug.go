package trace

import (
	"encoding/json"
	"net/http"
)

// traceSummary is one row of the /debug/traces listing.
type traceSummary struct {
	TraceID string `json:"trace_id"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Start   string `json:"start"`
	DurUS   int64  `json:"duration_us"`
	Spans   int    `json:"spans"`
}

// debugListing is the /debug/traces response without ?id=.
type debugListing struct {
	Capacity    int            `json:"capacity"`
	Stored      int            `json:"stored"`
	SampleRate  float64        `json:"sample_rate"`
	SlowQueryMS int64          `json:"slow_query_ms"`
	Traces      []traceSummary `json:"traces"`
}

// DebugHandler serves the trace ring: the recent window newest-first,
// or one full span tree via ?id=<32 hex digit trace id>.
func DebugHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s := r.URL.Query().Get("id"); s != "" {
			id, ok := ParseTraceID(s)
			if !ok {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(map[string]string{"error": "malformed trace id"})
				return
			}
			tr := t.Ring().Find(id)
			if tr == nil {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not found"})
				return
			}
			json.NewEncoder(w).Encode(tr.Snapshot())
			return
		}
		traces := t.Ring().Snapshot()
		out := debugListing{
			Capacity:    t.Ring().Cap(),
			Stored:      len(traces),
			SampleRate:  t.SampleRate(),
			SlowQueryMS: t.SlowThreshold().Milliseconds(),
			Traces:      make([]traceSummary, 0, len(traces)),
		}
		for _, tr := range traces {
			snap := tr.Snapshot()
			out.Traces = append(out.Traces, traceSummary{
				TraceID: snap.TraceID,
				Kind:    snap.Kind,
				Name:    snap.Root.Name,
				Start:   snap.Root.Start,
				DurUS:   snap.Root.DurUS,
				Spans:   snap.Spans,
			})
		}
		json.NewEncoder(w).Encode(out)
	}
}
