package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	sid := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := FormatTraceparent(tid, sid, FlagSampled)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gtid, gsid, flags, ok := ParseTraceparent(h)
	if !ok || gtid != tid || gsid != sid || flags != FlagSampled {
		t.Fatalf("round trip failed: ok=%v tid=%v sid=%v flags=%#x", ok, gtid, gsid, flags)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := map[string]string{
		"empty":            "",
		"short":            valid[:54],
		"long":             valid + "0",
		"uppercase tid":    "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id":   "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"version ff":       "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad dash":         "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"non-hex flags":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",
		"non-hex trace id": "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",
	}
	for name, h := range cases {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted malformed header", name, h)
		}
	}
	// Unknown-but-valid version parses (forward compatibility).
	if _, _, _, ok := ParseTraceparent("cc" + valid[2:]); !ok {
		t.Error("unknown version cc rejected; spec requires forward compatibility")
	}
}

func TestSamplingDeterminism(t *testing.T) {
	decisions := func() []bool {
		tr := New(Config{SampleRate: 0.5, Seed: 42})
		out := make([]bool, 64)
		for i := range out {
			out[i] = tr.StartRequest("x", "").Recording()
		}
		return out
	}
	a, b := decisions(), decisions()
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded tracers", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate-0.5 sampling produced %d/%d hits; want a mix", hits, len(a))
	}
}

func TestSamplingRateExtremes(t *testing.T) {
	always := New(Config{SampleRate: 1, Seed: 1})
	never := New(Config{SampleRate: 0, Seed: 1})
	for i := 0; i < 32; i++ {
		if !always.StartRequest("x", "").Recording() {
			t.Fatal("rate 1 skipped a request")
		}
		if never.StartRequest("x", "").Recording() {
			t.Fatal("rate 0 recorded a request")
		}
	}
}

func TestParentDecisionHonored(t *testing.T) {
	tr := New(Config{SampleRate: 0, Seed: 7})
	sampled := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := tr.StartRequest("knn", sampled)
	if !req.Recording() {
		t.Fatal("sampled parent flag not honored at rate 0")
	}
	if req.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not adopted: %s", req.TraceID)
	}
	unsampled := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	tr2 := New(Config{SampleRate: 1, Seed: 7})
	if tr2.StartRequest("knn", unsampled).Recording() {
		t.Fatal("unsampled parent flag overridden at rate 1")
	}
}

func TestMalformedHeaderMintsFreshTrace(t *testing.T) {
	tr := New(Config{Seed: 9})
	req := tr.StartRequest("distance", "garbage")
	if req.TraceID.IsZero() {
		t.Fatal("no trace ID minted for malformed traceparent")
	}
	if len(req.TraceID.String()) != 32 {
		t.Fatalf("trace ID renders as %d chars, want 32", len(req.TraceID.String()))
	}
	if !req.remoteParent.IsZero() {
		t.Fatal("malformed header left a remote parent")
	}
}

func TestFinishCommitRules(t *testing.T) {
	// Head-sampled request commits as "sampled".
	tr := New(Config{SampleRate: 1, Seed: 3})
	req := tr.StartRequest("knn", "")
	req.Finish(200, 5*time.Millisecond)
	if got := tr.Ring().Len(); got != 1 {
		t.Fatalf("sampled request not committed: ring len %d", got)
	}
	if k := tr.Ring().Snapshot()[0].Snapshot().Kind; k != "sampled" {
		t.Fatalf("kind = %q, want sampled", k)
	}
	s, d, _ := tr.Counters()
	if s != 1 || d != 0 {
		t.Fatalf("counters after sampled commit: sampled=%d dropped=%d", s, d)
	}

	// Unsampled 5xx promotes as "error".
	tr = New(Config{SampleRate: 0, Seed: 3})
	tr.StartRequest("knn", "").Finish(503, time.Millisecond)
	if k := tr.Ring().Snapshot()[0].Snapshot().Kind; k != "error" {
		t.Fatalf("kind = %q, want error", k)
	}
	s, d, _ = tr.Counters()
	if s != 0 || d != 0 {
		t.Fatalf("promoted error miscounted: sampled=%d dropped=%d", s, d)
	}

	// Unsampled slow request promotes as "slow" and has a profile.
	tr = New(Config{SampleRate: 0, SlowQuery: 10 * time.Millisecond, Seed: 3})
	req = tr.StartRequest("batch", "")
	if req.Profile() == nil {
		t.Fatal("slow-query promotion enabled but no profile allocated")
	}
	req.Profile().AddMerge(128, 2*time.Millisecond)
	req.Finish(200, 20*time.Millisecond)
	snap := tr.Ring().Snapshot()[0].Snapshot()
	if snap.Kind != "slow" {
		t.Fatalf("kind = %q, want slow", snap.Kind)
	}
	var merge *SpanJSON
	for _, c := range snap.Root.Children {
		if c.Name == "label_merge" {
			merge = c
		}
	}
	if merge == nil {
		t.Fatalf("promoted slow trace missing label_merge stage span: %+v", snap.Root)
	}
	if merge.Attrs["entries"] != "128" || merge.Running {
		t.Fatalf("label_merge span wrong: %+v", merge)
	}
	_, _, slow := tr.Counters()
	if slow != 1 {
		t.Fatalf("slow counter = %d, want 1", slow)
	}

	// Unsampled fast 2xx drops.
	tr = New(Config{SampleRate: 0, Seed: 3})
	tr.StartRequest("knn", "").Finish(200, time.Millisecond)
	if got := tr.Ring().Len(); got != 0 {
		t.Fatalf("dropped request committed a trace: ring len %d", got)
	}
	if _, d, _ := tr.Counters(); d != 1 {
		t.Fatalf("dropped counter = %d, want 1", d)
	}
}

func TestErrorBeatsSlowKind(t *testing.T) {
	tr := New(Config{SampleRate: 1, SlowQuery: time.Millisecond, Seed: 5})
	tr.StartRequest("knn", "").Finish(500, time.Second)
	if k := tr.Ring().Snapshot()[0].Snapshot().Kind; k != "error" {
		t.Fatalf("kind = %q, want error to outrank slow", k)
	}
}

func TestSpanTreeJSON(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 11})
	req := tr.StartRequest("query", "")
	sp := req.StartSpan("backend shard0")
	sp.SetAttr("path", "/knn")
	sp.SetInt("status", 200)
	sp.End()
	open := req.StartSpan("backend shard1") // never ended: hedge loser
	open.SetAttr("cancel", "superseded")
	req.Profile().AddScan(3, 4096, 2*time.Millisecond)
	req.Finish(200, 4*time.Millisecond)

	snap := tr.Ring().Snapshot()[0].Snapshot()
	if snap.Root.Name != "query" || snap.Root.Running {
		t.Fatalf("root wrong: %+v", snap.Root)
	}
	if snap.Root.Attrs["status"] != "200" {
		t.Fatalf("root status attr = %q", snap.Root.Attrs["status"])
	}
	byName := map[string]*SpanJSON{}
	for _, c := range snap.Root.Children {
		byName[c.Name] = c
	}
	done := byName["backend shard0"]
	if done == nil || done.Running || done.Attrs["status"] != "200" || done.Parent != snap.Root.ID {
		t.Fatalf("finished child wrong: %+v", done)
	}
	loser := byName["backend shard1"]
	if loser == nil || !loser.Running {
		t.Fatalf("unfinished child not in_flight: %+v", loser)
	}
	scan := byName["hub_scan"]
	if scan == nil || scan.Attrs["items"] != "4096" || scan.Attrs["runs"] != "3" || scan.Running {
		t.Fatalf("hub_scan stage wrong: %+v", scan)
	}
	if snap.Spans != 4 {
		t.Fatalf("span count = %d, want 4", snap.Spans)
	}

	// A late End on the loser (after commit) must take effect safely.
	byPtr := tr.Ring().Find(req.TraceID)
	if byPtr == nil {
		t.Fatal("Find missed the committed trace")
	}
	openEndsLate(open)
	snap = byPtr.Snapshot()
	for _, c := range snap.Root.Children {
		if c.Name == "backend shard1" && c.Running {
			t.Fatal("late End not reflected in snapshot")
		}
	}
}

func openEndsLate(s *Span) { s.End() }

func TestTraceparentForwarding(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 13})
	req := tr.StartRequest("knn", "")
	sp := req.StartSpan("backend")
	h := req.Traceparent(sp)
	tid, parent, flags, ok := ParseTraceparent(h)
	if !ok || tid != req.TraceID || parent != sp.id || flags&FlagSampled == 0 {
		t.Fatalf("forwarded header wrong: %q", h)
	}
	// Unsampled request forwards flag 00 under the root span.
	tr0 := New(Config{SampleRate: 0, Seed: 13})
	req0 := tr0.StartRequest("knn", "")
	h0 := req0.Traceparent(nil)
	_, parent0, flags0, ok := ParseTraceparent(h0)
	if !ok || flags0&FlagSampled != 0 || parent0 != req0.rootSpan {
		t.Fatalf("unsampled forwarded header wrong: %q", h0)
	}
}

func TestNilSafety(t *testing.T) {
	var req *Request
	var sp *Span
	var p *QueryProfile
	req.Finish(200, time.Millisecond)
	if req.Profile() != nil || req.Recording() || req.StartSpan("x") != nil || req.Traceparent(nil) != "" {
		t.Fatal("nil Request methods not inert")
	}
	sp.SetAttr("a", "b")
	sp.SetInt("c", 1)
	sp.End()
	p.AddAdmissionWait(time.Millisecond)
	p.CacheLookup(true)
	p.AddMerge(1, time.Millisecond)
	p.AddScan(1, 1, time.Millisecond)
	if p.Snapshot() != nil || p.LogAttrs() != nil {
		t.Fatal("nil QueryProfile not inert")
	}
}

func TestProfileLogAttrs(t *testing.T) {
	p := &QueryProfile{}
	p.AddAdmissionWait(time.Millisecond)
	p.CacheLookup(false)
	p.CacheLookup(true)
	p.AddMerge(64, 2*time.Millisecond)
	attrs := p.LogAttrs()
	keys := make([]string, len(attrs))
	for i, a := range attrs {
		keys[i] = a.Key
	}
	want := "admission_wait cache_lookups cache_hits merge_calls merge_entries merge_time"
	if got := strings.Join(keys, " "); got != want {
		t.Fatalf("LogAttrs keys = %q, want %q", got, want)
	}
}
