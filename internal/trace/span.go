package trace

import (
	"strconv"
	"sync"
	"time"
)

// Trace is one recorded request's span tree. A single mutex guards the
// whole tree: span churn is a handful of operations per request, and
// the lock keeps late finishers safe — a hedge-loser goroutine may End
// its span after the root trace was committed to the ring and is being
// snapshotted by a /debug/traces scrape.
type Trace struct {
	mu   sync.Mutex
	id   TraceID
	kind string // "sampled" | "slow" | "error"
	root *Span
}

// Span is one timed operation within a trace. Mutate only through the
// methods; all of them are safe on a nil receiver.
type Span struct {
	tr       *Trace
	id       SpanID
	parent   SpanID
	name     string
	start    time.Time
	dur      time.Duration // 0 while still running
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

func newTrace(id TraceID, name string, root, remoteParent SpanID, start time.Time) *Trace {
	tr := &Trace{id: id, kind: "sampled"}
	tr.root = &Span{tr: tr, id: root, parent: remoteParent, name: name, start: start}
	return tr
}

// ID returns the trace's identifier.
func (tr *Trace) ID() TraceID { return tr.id }

// newChild opens a child span under s.
func (s *Span) newChild(name string, id SpanID) *Span {
	c := &Span{tr: s.tr, id: id, parent: s.id, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.tr.mu.Unlock()
}

// SetInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetInt(key string, val int64) {
	s.SetAttr(key, strconv.FormatInt(val, 10))
}

// End closes the span at its current duration; later Ends are no-ops,
// as is the whole call on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if s.dur == 0 {
		s.dur = d
	}
	s.tr.mu.Unlock()
}

// finish closes the root span with the request outcome and attaches
// the profile's stage breakdown as synthetic child spans (stage spans
// carry real durations but inherit the root's start time — the profile
// records how long each stage ran, not when).
func (tr *Trace) finish(status int, d time.Duration, p *QueryProfile, kind string) {
	snap := p.Snapshot()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.kind = kind
	root := tr.root
	if root.dur == 0 {
		root.dur = d
	}
	root.attrs = append(root.attrs, Attr{Key: "status", Val: strconv.Itoa(status)})
	if snap == nil {
		return
	}
	stage := func(name string, ns int64, attrs ...Attr) {
		if ns <= 0 && len(attrs) == 0 {
			return
		}
		sp := &Span{tr: tr, parent: root.id, name: name, start: root.start, dur: time.Duration(ns), attrs: attrs}
		root.children = append(root.children, sp)
	}
	if snap.AdmissionNs > 0 {
		stage("admission", snap.AdmissionNs)
	}
	if snap.CacheLookups > 0 {
		root.attrs = append(root.attrs,
			Attr{Key: "cache_lookups", Val: strconv.FormatInt(snap.CacheLookups, 10)},
			Attr{Key: "cache_hits", Val: strconv.FormatInt(snap.CacheHits, 10)})
	}
	if snap.MergeCalls > 0 {
		stage("label_merge", snap.MergeNs,
			Attr{Key: "calls", Val: strconv.FormatInt(snap.MergeCalls, 10)},
			Attr{Key: "entries", Val: strconv.FormatInt(snap.MergeEntries, 10)})
	}
	if snap.ScanRuns > 0 || snap.ScanItems > 0 {
		stage("hub_scan", snap.ScanNs,
			Attr{Key: "runs", Val: strconv.FormatInt(snap.ScanRuns, 10)},
			Attr{Key: "items", Val: strconv.FormatInt(snap.ScanItems, 10)})
	}
}

// SpanJSON is one span in the /debug/traces wire shape.
type SpanJSON struct {
	ID       string            `json:"id,omitempty"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    string            `json:"start"`
	DurUS    int64             `json:"duration_us"`
	Running  bool              `json:"in_flight,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is one trace in the /debug/traces wire shape.
type TraceJSON struct {
	TraceID string    `json:"trace_id"`
	Kind    string    `json:"kind"`
	Spans   int       `json:"spans"`
	Root    *SpanJSON `json:"root"`
}

// Snapshot renders the trace as its JSON wire shape, consistent under
// concurrent span mutation.
func (tr *Trace) Snapshot() TraceJSON {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	root := snapshotSpan(tr.root, &n)
	return TraceJSON{TraceID: tr.id.String(), Kind: tr.kind, Spans: n, Root: root}
}

func snapshotSpan(s *Span, n *int) *SpanJSON {
	*n++
	out := &SpanJSON{
		Name:  s.name,
		Start: s.start.UTC().Format(time.RFC3339Nano),
		DurUS: s.dur.Microseconds(),
		// Synthetic stage spans (zero ID) are never "running": they are
		// born finished, with the duration the profile recorded.
		Running: s.dur == 0 && !s.id.IsZero(),
	}
	if !s.id.IsZero() {
		out.ID = s.id.String()
	}
	if !s.parent.IsZero() {
		out.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapshotSpan(c, n))
	}
	return out
}
