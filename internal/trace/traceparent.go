package trace

// W3C Trace Context (traceparent) identifiers and header codec. The
// header shape is
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 lowhex -   16 lowhex -   2 lowhex
//
// Parsing is strict where the spec is strict — field lengths, lowercase
// hex, non-zero trace and parent IDs, version ff forbidden — and
// forward-compatible where it is lenient: an unknown version parses as
// long as the known fields are well-formed. Anything malformed is
// simply "no traceparent": the caller starts a fresh trace rather than
// failing the request.

// TraceID identifies one distributed trace (16 bytes, rendered as 32
// lowercase hex digits).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return string(appendHex(nil, id[:])) }

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return string(appendHex(nil, id[:])) }

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

// fromHex decodes exactly len(dst)*2 lowercase hex digits; uppercase
// is rejected (the spec mandates lowercase on the wire).
func fromHex(dst []byte, src string) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// ParseTraceparent parses a traceparent header. ok is false — and the
// caller should mint a fresh trace — for anything malformed: wrong
// field lengths, uppercase or non-hex digits, an all-zero trace or
// parent ID, or the forbidden version ff.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, flags byte, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, 0, false
	}
	var ver [1]byte
	if !fromHex(ver[:], h[0:2]) || ver[0] == 0xff {
		return TraceID{}, SpanID{}, 0, false
	}
	if !fromHex(tid[:], h[3:35]) || tid.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	if !fromHex(parent[:], h[36:52]) || parent.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	var fl [1]byte
	if !fromHex(fl[:], h[53:55]) {
		return TraceID{}, SpanID{}, 0, false
	}
	return tid, parent, fl[0], true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(tid TraceID, parent SpanID, flags byte) string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, tid[:])
	b = append(b, '-')
	b = appendHex(b, parent[:])
	b = append(b, '-')
	b = append(b, hexDigits[flags>>4], hexDigits[flags&0x0f])
	return string(b)
}

// ParseTraceID decodes 32 lowercase hex digits (the /debug/traces ?id=
// lookup key).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if !fromHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}
