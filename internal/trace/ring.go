package trace

import "sync/atomic"

// Ring is a lock-free fixed-capacity trace buffer: writers claim a
// slot with one atomic add and store the trace pointer atomically, so
// committing a trace never contends with scrapes, and a reader always
// sees either nil or a complete *Trace. Old traces are overwritten in
// arrival order once the ring wraps.
type Ring struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64 // next write index (monotonic, mod len(slots))
}

// NewRing builds a ring holding up to n traces (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], n)}
}

// Put commits a trace, overwriting the oldest slot once full.
func (r *Ring) Put(t *Trace) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the number of traces currently stored.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the stored traces, newest first. Concurrent writers
// may overwrite slots mid-walk; a slot read twice or skipped costs a
// duplicate or a miss in the debug listing, never a torn trace.
func (r *Ring) Snapshot() []*Trace {
	n := len(r.slots)
	out := make([]*Trace, 0, n)
	next := r.pos.Load()
	for k := 0; k < n; k++ {
		// Walk backwards from the most recent write.
		i := (next + uint64(n) - 1 - uint64(k)) % uint64(n)
		t := r.slots[i].Load()
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Find returns the stored trace with the given ID, or nil. Linear in
// the ring capacity — fine for a debug endpoint over a few hundred
// slots.
func (r *Ring) Find(id TraceID) *Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.id == id {
			return t
		}
	}
	return nil
}
