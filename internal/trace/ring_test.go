package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring cap=%d len=%d", r.Cap(), r.Len())
	}
	mk := func(i byte) *Trace {
		id := TraceID{15: i}
		return newTrace(id, "t", SpanID{7: 1}, SpanID{}, time.Now())
	}
	for i := byte(1); i <= 6; i++ {
		r.Put(mk(i))
	}
	if r.Len() != 4 {
		t.Fatalf("wrapped ring len = %d, want 4", r.Len())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// Newest first: 6, 5, 4, 3.
	for i, want := range []byte{6, 5, 4, 3} {
		if got[i].id[15] != want {
			t.Fatalf("snapshot[%d] = trace %d, want %d", i, got[i].id[15], want)
		}
	}
	if r.Find(TraceID{15: 5}) == nil {
		t.Fatal("Find missed a live trace")
	}
	if r.Find(TraceID{15: 1}) != nil {
		t.Fatal("Find returned an overwritten trace")
	}
}

// TestRingConcurrent hammers Put/Snapshot/Find from many goroutines;
// run under -race this verifies the lock-free protocol.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(32)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := TraceID{0: byte(w), 15: byte(i)}
				tr := newTrace(id, "t", SpanID{7: 1}, SpanID{}, time.Now())
				tr.root.SetInt("i", int64(i))
				r.Put(tr)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot() {
					snap := tr.Snapshot()
					if snap.Root == nil || snap.Spans < 1 {
						t.Error("torn trace observed")
						return
					}
				}
				r.Find(TraceID{0: 1, 15: 7})
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if r.Len() != 32 {
		t.Fatalf("ring len = %d, want 32", r.Len())
	}
}
