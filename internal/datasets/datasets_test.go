package datasets

import (
	"testing"

	"pll/internal/graph"
)

func TestAllRecipesPresent(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("recipes = %d, want 11 (Table 4)", len(all))
	}
	if len(Small()) != 5 {
		t.Fatalf("small recipes = %d, want 5", len(Small()))
	}
}

func TestRecipesGenerateAtSmallScale(t *testing.T) {
	for _, r := range All() {
		g := r.Generate(1024, 7) // heavily scaled down for CI
		if g.NumVertices() < 64 {
			t.Fatalf("%s: n = %d too small", r.Name, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", r.Name)
		}
		// Heavy-tailed stand-ins: max degree well above the mean.
		mean := float64(2*g.NumEdges()) / float64(g.NumVertices())
		if float64(g.MaxDegree()) < 2*mean {
			t.Fatalf("%s: max degree %d vs mean %.1f — tail too light", r.Name, g.MaxDegree(), mean)
		}
	}
}

func TestRecipesDeterministic(t *testing.T) {
	r, err := ByName("Epinions")
	if err != nil {
		t.Fatal(err)
	}
	a := r.Generate(256, 3)
	b := r.Generate(256, 3)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must reproduce the graph")
	}
}

func TestScaledSizesTrackPaper(t *testing.T) {
	for _, r := range All() {
		g := r.Generate(256, 1)
		wantN := r.PaperV / 256
		if wantN < 64 {
			wantN = 64
		}
		n := int64(g.NumVertices())
		// R-MAT rounds up to a power of two; allow 2x slack.
		if n < wantN || n > 2*wantN {
			t.Fatalf("%s: n = %d, want within [%d, %d]", r.Name, n, wantN, 2*wantN)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFigureSubsets(t *testing.T) {
	f3 := Fig3Sets()
	if len(f3) != 3 {
		t.Fatalf("Fig3Sets = %d recipes", len(f3))
	}
	f4 := Fig4Sets()
	if len(f4) != 3 {
		t.Fatalf("Fig4Sets = %d recipes", len(f4))
	}
	for _, r := range f4 {
		if !r.Small {
			t.Fatalf("%s in Fig4Sets should be a small dataset", r.Name)
		}
	}
}

func TestBitParallelSettingsMatchPaper(t *testing.T) {
	for _, r := range All() {
		want := 64
		if r.Small {
			want = 16
		}
		if r.BitParallel != want {
			t.Fatalf("%s: t = %d, want %d", r.Name, r.BitParallel, want)
		}
	}
}

func TestP2PRecipeConnectedEnough(t *testing.T) {
	r, err := ByName("Gnutella")
	if err != nil {
		t.Fatal(err)
	}
	g := r.Generate(64, 5)
	lc := graph.LargestComponent(g)
	if float64(len(lc)) < 0.9*float64(g.NumVertices()) {
		t.Fatalf("Gnutella stand-in giant component %d/%d too small", len(lc), g.NumVertices())
	}
}
