// Package datasets maps the paper's 11 real-world networks (Table 4) to
// deterministic synthetic stand-ins with matching size and degree shape.
// See DESIGN.md §3 for the substitution rationale: the module is built
// offline, so the SNAP/LAW snapshots cannot be fetched; Barabási–Albert
// reproduces the social networks' power-law + small-world behaviour and
// R-MAT the web/computer graphs' skewed, locally dense structure — the
// two properties PLL's evaluation depends on.
//
// Every recipe is generated at a Scale factor: Scale 1 targets the
// paper's |V| (hundreds of millions of edges for the largest graphs);
// the default experiment scale divides |V| by 64 so the full suite runs
// on a laptop in minutes.
package datasets

import (
	"fmt"
	"sort"

	"pll/internal/gen"
	"pll/internal/graph"
)

// Kind is the paper's network category (Table 4's "Network" column).
type Kind string

// Network categories from Table 4.
const (
	Social   Kind = "Social"
	Web      Kind = "Web"
	Computer Kind = "Computer"
)

// Recipe describes one dataset stand-in.
type Recipe struct {
	Name string
	Kind Kind
	// PaperV and PaperE are |V| and |E| reported in Table 4.
	PaperV, PaperE int64
	// Generate builds the stand-in at the given scale divisor (>= 1):
	// the vertex count is PaperV / scaleDiv (floored, min 64).
	Generate func(scaleDiv int64, seed uint64) *graph.Graph
	// BitParallel is the t used for this dataset in Table 3 (16 for the
	// smaller five, 64 for the larger six).
	BitParallel int
	// Small marks the five smaller datasets used for Table 5 / Figure 4.
	Small bool
}

// scaledN returns the stand-in vertex count for a scale divisor.
func scaledN(paperV, scaleDiv int64) int {
	n := paperV / scaleDiv
	if n < 64 {
		n = 64
	}
	return int(n)
}

// ba builds a Barabási–Albert recipe whose attachment parameter matches
// the paper's average degree m/n (rounded: flooring would turn WikiTalk,
// |E|/|V| = 1.95, into a tree).
func ba(paperV, paperE int64) func(int64, uint64) *graph.Graph {
	m := int((paperE + paperV/2) / paperV)
	if m < 1 {
		m = 1
	}
	return func(scaleDiv int64, seed uint64) *graph.Graph {
		return gen.BarabasiAlbert(scaledN(paperV, scaleDiv), m, seed)
	}
}

// rmat builds an R-MAT recipe with the standard web-graph skew and an
// average degree matching the paper's m/n.
func rmat(paperV, paperE int64) func(int64, uint64) *graph.Graph {
	avgDeg := int((paperE + paperV/2) / paperV)
	if avgDeg < 1 {
		avgDeg = 1
	}
	return func(scaleDiv int64, seed uint64) *graph.Graph {
		n := scaledN(paperV, scaleDiv)
		scale := 1
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, avgDeg, 0.57, 0.19, 0.19, seed)
	}
}

// p2p builds a Gnutella-like recipe: preferential attachment with low m
// blended with uniform random edges (P2P overlays have a milder tail
// than social networks).
func p2p(paperV, paperE int64) func(int64, uint64) *graph.Graph {
	return func(scaleDiv int64, seed uint64) *graph.Graph {
		n := scaledN(paperV, scaleDiv)
		m := int64(n) * paperE / paperV
		base := gen.BarabasiAlbert(n, 1, seed)
		edges := base.Edges()
		extra := gen.ErdosRenyi(n, m-base.NumEdges(), seed^0xabc)
		edges = append(edges, extra.Edges()...)
		g, err := graph.NewGraph(n, edges)
		if err != nil {
			panic(err)
		}
		return g
	}
}

// All returns the 11 dataset recipes in the paper's Table 4 order.
func All() []Recipe {
	return []Recipe{
		{Name: "Gnutella", Kind: Computer, PaperV: 63_000, PaperE: 148_000, Generate: p2p(63_000, 148_000), BitParallel: 16, Small: true},
		{Name: "Epinions", Kind: Social, PaperV: 76_000, PaperE: 509_000, Generate: ba(76_000, 509_000), BitParallel: 16, Small: true},
		{Name: "Slashdot", Kind: Social, PaperV: 82_000, PaperE: 948_000, Generate: ba(82_000, 948_000), BitParallel: 16, Small: true},
		{Name: "NotreDame", Kind: Web, PaperV: 326_000, PaperE: 1_500_000, Generate: rmat(326_000, 1_500_000), BitParallel: 16, Small: true},
		{Name: "WikiTalk", Kind: Social, PaperV: 2_400_000, PaperE: 4_700_000, Generate: ba(2_400_000, 4_700_000), BitParallel: 16, Small: true},
		{Name: "Skitter", Kind: Computer, PaperV: 1_700_000, PaperE: 11_000_000, Generate: rmat(1_700_000, 11_000_000), BitParallel: 64},
		{Name: "Indo", Kind: Web, PaperV: 1_400_000, PaperE: 17_000_000, Generate: rmat(1_400_000, 17_000_000), BitParallel: 64},
		{Name: "MetroSec", Kind: Computer, PaperV: 2_300_000, PaperE: 22_000_000, Generate: rmat(2_300_000, 22_000_000), BitParallel: 64},
		{Name: "Flickr", Kind: Social, PaperV: 1_800_000, PaperE: 23_000_000, Generate: ba(1_800_000, 23_000_000), BitParallel: 64},
		{Name: "Hollywood", Kind: Social, PaperV: 1_100_000, PaperE: 114_000_000, Generate: ba(1_100_000, 114_000_000), BitParallel: 64},
		{Name: "Indochina", Kind: Web, PaperV: 7_400_000, PaperE: 194_000_000, Generate: rmat(7_400_000, 194_000_000), BitParallel: 64},
	}
}

// Small returns the paper's five smaller datasets (Table 3's top block,
// Table 5, Figure 4).
func Small() []Recipe {
	var out []Recipe
	for _, r := range All() {
		if r.Small {
			out = append(out, r)
		}
	}
	return out
}

// ByName returns the recipe with the given (case-sensitive) name.
func ByName(name string) (Recipe, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Recipe{}, fmt.Errorf("datasets: unknown dataset %q (want one of %v)", name, Names())
}

// Names lists all recipe names in Table 4 order.
func Names() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.Name)
	}
	return out
}

// Fig3Sets returns the three datasets Figure 3 analyzes (Skitter, Indo,
// Flickr).
func Fig3Sets() []Recipe {
	return pick("Skitter", "Indo", "Flickr")
}

// Fig4Sets returns the three datasets Figure 4 analyzes (Gnutella,
// Epinions, Slashdot).
func Fig4Sets() []Recipe {
	return pick("Gnutella", "Epinions", "Slashdot")
}

func pick(names ...string) []Recipe {
	sort.Strings(names)
	var out []Recipe
	for _, r := range All() {
		i := sort.SearchStrings(names, r.Name)
		if i < len(names) && names[i] == r.Name {
			out = append(out, r)
		}
	}
	return out
}
