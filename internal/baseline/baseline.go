// Package baseline implements the comparison methods the paper measures
// PLL against or builds on:
//
//   - Oracle: online BFS per query (Table 3's "BFS" column);
//   - NaiveLabeling: the unpruned labeling of §4.1 — a full BFS from
//     every vertex, Θ(n²) labels — used to cross-check the pruned method
//     and to quantify how much pruning saves;
//   - Landmarks: the standard landmark-based *approximate* method of
//     §2.2 / §4.1, which underlies the pair-coverage analysis of Figure 4
//     and the Theorem 4.3 experiment.
package baseline

import (
	"pll/internal/bfs"
	"pll/internal/graph"
	"pll/internal/order"
)

// Unreachable mirrors bfs.Unreachable for this package's return values.
const Unreachable = bfs.Unreachable

// Oracle answers every query with a fresh bidirectional BFS. Zero
// preprocessing, slow queries — one end of the design space.
type Oracle struct {
	g *graph.Graph
}

// NewOracle wraps g in an online-BFS distance oracle.
func NewOracle(g *graph.Graph) *Oracle { return &Oracle{g: g} }

// Query returns the exact s-t distance or Unreachable.
func (o *Oracle) Query(s, t int32) int {
	return int(bfs.BidirectionalDistance(o.g, s, t))
}

// NaiveLabeling is the §4.1 index: label L_k(u) accumulates the distance
// from every BFS root v_1..v_k that reaches u, with no pruning. Exact but
// quadratic; only usable on small graphs.
type NaiveLabeling struct {
	n     int
	rank  []int32
	off   []int64
	hubs  []int32 // hub ranks, ascending (roots are processed in rank order)
	dists []uint8
}

// BuildNaive runs a full BFS from every vertex in the given order
// (perm[rank] = vertex) and stores all finite distances.
func BuildNaive(g *graph.Graph, perm []int32) *NaiveLabeling {
	n := g.NumVertices()
	labH := make([][]int32, n)
	labD := make([][]uint8, n)
	h, err := g.Relabel(perm)
	if err != nil {
		panic(err)
	}
	for vk := int32(0); int(vk) < n; vk++ {
		for u, d := range bfs.AllDistances(h, vk) {
			if d != bfs.Unreachable {
				labH[u] = append(labH[u], vk)
				labD[u] = append(labD[u], uint8(min(int(d), 254)))
			}
		}
	}
	nl := &NaiveLabeling{n: n, rank: order.RankOf(perm)}
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(labH[v])) + 1
	}
	nl.off = make([]int64, n+1)
	nl.hubs = make([]int32, total)
	nl.dists = make([]uint8, total)
	w := int64(0)
	for v := 0; v < n; v++ {
		nl.off[v] = w
		copy(nl.hubs[w:], labH[v])
		copy(nl.dists[w:], labD[v])
		w += int64(len(labH[v]))
		nl.hubs[w] = int32(n)
		nl.dists[w] = 255
		w++
	}
	nl.off[n] = w
	return nl
}

// Query returns the exact s-t distance via the merge join, or Unreachable.
func (nl *NaiveLabeling) Query(s, t int32) int {
	if s == t {
		return 0
	}
	rs, rt := nl.rank[s], nl.rank[t]
	best := 1 << 20
	i, j := nl.off[rs], nl.off[rt]
	for {
		vs, vt := nl.hubs[i], nl.hubs[j]
		switch {
		case vs == vt:
			if int(vs) == nl.n {
				if best >= 1<<20 {
					return Unreachable
				}
				return best
			}
			if d := int(nl.dists[i]) + int(nl.dists[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// TotalLabelEntries returns the total number of stored (hub, distance)
// pairs, the quantity pruning is designed to shrink.
func (nl *NaiveLabeling) TotalLabelEntries() int64 {
	return nl.off[nl.n] - int64(nl.n) // subtract sentinels
}

// Landmarks is the standard landmark-based approximate oracle: distances
// from k landmark vertices to everything; Estimate is the minimum
// landmark detour, an upper bound on the true distance.
type Landmarks struct {
	n         int
	landmarks []int32
	dist      [][]int32 // dist[i][v] = d(landmarks[i], v)
}

// BuildLandmarks computes distances from the first k vertices of the
// given order (use order.ByDegree for the paper's central-landmark
// selection).
func BuildLandmarks(g *graph.Graph, perm []int32, k int) *Landmarks {
	if k > len(perm) {
		k = len(perm)
	}
	lm := &Landmarks{n: g.NumVertices(), landmarks: append([]int32(nil), perm[:k]...)}
	lm.dist = make([][]int32, k)
	for i, l := range lm.landmarks {
		lm.dist[i] = bfs.AllDistances(g, l)
	}
	return lm
}

// NumLandmarks returns how many landmarks the oracle stores.
func (lm *Landmarks) NumLandmarks() int { return len(lm.landmarks) }

// Estimate returns the landmark upper bound min_l d(s,l)+d(l,t), or
// Unreachable if no landmark reaches both endpoints.
func (lm *Landmarks) Estimate(s, t int32) int {
	if s == t {
		return 0
	}
	best := 1 << 20
	for _, d := range lm.dist {
		ds, dt := d[s], d[t]
		if ds == bfs.Unreachable || dt == bfs.Unreachable {
			continue
		}
		if v := int(ds) + int(dt); v < best {
			best = v
		}
	}
	if best >= 1<<20 {
		return Unreachable
	}
	return best
}

// EstimateWithPrefix is Estimate restricted to the first k landmarks,
// letting coverage curves (Figure 4) be swept without rebuilding.
func (lm *Landmarks) EstimateWithPrefix(s, t int32, k int) int {
	if s == t {
		return 0
	}
	if k > len(lm.dist) {
		k = len(lm.dist)
	}
	best := 1 << 20
	for _, d := range lm.dist[:k] {
		ds, dt := d[s], d[t]
		if ds == bfs.Unreachable || dt == bfs.Unreachable {
			continue
		}
		if v := int(ds) + int(dt); v < best {
			best = v
		}
	}
	if best >= 1<<20 {
		return Unreachable
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
