package baseline

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

func randomGraph(seed uint64, maxN int) *graph.Graph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := r.Intn(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestOracleMatchesBFS(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	o := NewOracle(g)
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		s, u := r.Int31n(100), r.Int31n(100)
		if o.Query(s, u) != int(bfs.Distance(g, s, u)) {
			t.Fatalf("oracle mismatch at (%d,%d)", s, u)
		}
	}
}

func TestNaiveLabelingExact(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40)
		perm := order.ByDegree(g, seed)
		nl := BuildNaive(g, perm)
		n := int32(g.NumVertices())
		r := rng.New(seed + 7)
		for i := 0; i < 25; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			got := nl.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveLabelingSizeIsQuadraticOnConnected(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 3)
	nl := BuildNaive(g, order.ByDegree(g, 1))
	// Connected graph: every BFS reaches everything, so exactly n^2 pairs.
	if nl.TotalLabelEntries() != 100*100 {
		t.Fatalf("naive entries = %d, want 10000", nl.TotalLabelEntries())
	}
}

func TestLandmarksUpperBound(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 50)
		perm := order.ByDegree(g, seed)
		lm := BuildLandmarks(g, perm, 8)
		n := int32(g.NumVertices())
		r := rng.New(seed * 11)
		for i := 0; i < 25; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			truth := bfs.Distance(g, s, u)
			est := lm.Estimate(s, u)
			if truth == bfs.Unreachable {
				continue // estimate may be anything only if some landmark bridges; it can't
			}
			if est == Unreachable {
				// A landmark may miss the component; that is allowed for
				// the approximate method, but est must never be below truth.
				continue
			}
			if est < int(truth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLandmarksExactWhenLandmarkOnPath(t *testing.T) {
	// Star graph: the center is on every shortest leaf-leaf path, so one
	// degree-ordered landmark answers everything exactly.
	g := gen.Star(20)
	lm := BuildLandmarks(g, order.ByDegree(g, 1), 1)
	if lm.NumLandmarks() != 1 {
		t.Fatal("want exactly 1 landmark")
	}
	if lm.Estimate(3, 7) != 2 {
		t.Fatalf("leaf-leaf estimate = %d, want 2", lm.Estimate(3, 7))
	}
	if lm.Estimate(0, 5) != 1 {
		t.Fatalf("center-leaf estimate = %d, want 1", lm.Estimate(0, 5))
	}
}

func TestEstimateWithPrefixMonotone(t *testing.T) {
	// More landmarks can only improve (lower) the estimate.
	g := gen.BarabasiAlbert(150, 3, 5)
	lm := BuildLandmarks(g, order.ByDegree(g, 2), 16)
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		s, u := r.Int31n(150), r.Int31n(150)
		prev := 1 << 20
		for k := 1; k <= 16; k++ {
			est := lm.EstimateWithPrefix(s, u, k)
			if est == Unreachable {
				est = 1 << 20
			}
			if est > prev {
				t.Fatalf("estimate increased with more landmarks at (%d,%d), k=%d", s, u, k)
			}
			prev = est
		}
	}
}

func TestEstimateWithPrefixClamp(t *testing.T) {
	g := gen.Path(10)
	lm := BuildLandmarks(g, order.ByDegree(g, 1), 3)
	if lm.EstimateWithPrefix(0, 9, 100) != lm.Estimate(0, 9) {
		t.Fatal("prefix beyond k should equal full estimate")
	}
}

func TestLandmarksKClamped(t *testing.T) {
	g := gen.Path(5)
	lm := BuildLandmarks(g, order.ByDegree(g, 1), 99)
	if lm.NumLandmarks() != 5 {
		t.Fatalf("landmarks = %d, want clamped 5", lm.NumLandmarks())
	}
}

func TestTheorem43LandmarkCoverageBoundsLabelSize(t *testing.T) {
	// Theorem 4.3: if k landmarks answer (1-eps) of all pairs exactly,
	// the PLL average label size is O(k + eps*n). We verify the spirit:
	// on a BA graph, high coverage by few landmarks coincides with small
	// PLL labels. This is exercised end-to-end in internal/exp; here we
	// check the coverage measurement itself.
	g := gen.BarabasiAlbert(300, 3, 8)
	perm := order.ByDegree(g, 1)
	lm := BuildLandmarks(g, perm, 16)
	covered := 0
	r := rng.New(4)
	const pairs = 2000
	for i := 0; i < pairs; i++ {
		s, u := r.Int31n(300), r.Int31n(300)
		if lm.Estimate(s, u) == int(bfs.Distance(g, s, u)) {
			covered++
		}
	}
	frac := float64(covered) / pairs
	if frac < 0.5 {
		t.Fatalf("16 degree-ordered landmarks cover only %.2f of pairs on a BA graph; expected the paper's high-coverage phenomenon", frac)
	}
}

func BenchmarkOracleQuery(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	o := NewOracle(g)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Query(r.Int31n(10000), r.Int31n(10000))
	}
}

func BenchmarkNaiveConstruction(b *testing.B) {
	g := gen.BarabasiAlbert(500, 3, 1)
	perm := order.ByDegree(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNaive(g, perm)
	}
}
