package cluster

// One backend = one pllserved replica the coordinator may route to.
// Each holds its own bounded connection pool, circuit breaker, latency
// ring (for the adaptive hedge delay) and scrape counters, so one slow
// or dying replica is observable and containable in isolation.

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pll/internal/server"
)

// identity is the backend-identity payload replicas report on /healthz.
// Backends whose identity disagrees with the pool majority are excluded
// from routing: a replica serving a different index would silently
// corrupt merged answers.
type identity struct {
	Variant  string `json:"variant"`
	Vertices int    `json:"vertices"`
	Checksum string `json:"checksum"`
}

type backend struct {
	base   string // normalized base URL, no trailing slash
	host   string // host:port, for X-Forwarded-For-style labels
	seed   uint64 // rendezvous seed, from the base URL
	client *http.Client

	healthy  atomic.Bool // last health sweep succeeded
	mismatch atomic.Bool // identity disagrees with the pool majority

	idMu sync.Mutex
	id   identity
	gen  uint64 // backend's index generation, informational only

	breaker breaker
	lat     latencyRing

	ok     atomic.Int64 // 2xx/4xx responses (the backend worked)
	errs   atomic.Int64 // transport errors and 5xx responses
	hedges atomic.Int64 // hedge attempts sent to this backend
	hist   server.Histogram
}

func newBackend(base, host string, cfg Config) *backend {
	b := &backend{
		base: base,
		host: host,
		seed: hashName(base),
		client: &http.Client{
			Transport: &http.Transport{
				MaxConnsPerHost:     cfg.MaxConnsPerBackend,
				MaxIdleConnsPerHost: cfg.MaxConnsPerBackend,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	b.breaker.failLimit = int64(cfg.BreakerFailures)
	b.breaker.cooldown = cfg.BreakerCooldown
	// No attempt outlives RequestTimeout, so a probe slot older than
	// that was abandoned and may be reclaimed.
	b.breaker.probeTTL = cfg.RequestTimeout
	return b
}

// routable reports whether requests may be sent to this backend now.
// An open breaker overrides a green health check (the breaker reacts in
// milliseconds, the health sweep once per interval). Read-only: the
// probe slot of a cooled-down breaker is consumed at send time
// (fetch), never here — /metrics, /healthz and rendezvous ranking all
// call this without sending anything.
func (b *backend) routable() bool {
	return b.healthy.Load() && !b.mismatch.Load() && b.breaker.canRoute()
}

// observe records one completed attempt against the backend: latency
// always, and success/failure for the breaker. 4xx counts as success —
// the backend answered; the request was bad.
func (b *backend) observe(d time.Duration, ok bool) {
	b.hist.Observe(d)
	b.lat.add(d)
	if ok {
		b.ok.Add(1)
		b.breaker.succeed()
	} else {
		b.errs.Add(1)
		b.breaker.fail()
	}
}

func (b *backend) identitySnapshot() (identity, uint64) {
	b.idMu.Lock()
	defer b.idMu.Unlock()
	return b.id, b.gen
}

func (b *backend) setIdentity(id identity, gen uint64) {
	b.idMu.Lock()
	b.id = id
	b.gen = gen
	b.idMu.Unlock()
}

// breaker is a consecutive-failure circuit breaker. After failLimit
// consecutive failures it opens for cooldown; once the cooldown
// elapses the backend looks routable again, but acquire() admits only
// one in-flight probe at a time until a success closes the breaker.
//
// Deciding routability (canRoute) and consuming the probe slot
// (acquire) are separate on purpose: routability is read from paths
// that never send a request, and a slot consumed there would never be
// released by a completed attempt — stranding the breaker open. The
// slot is also timestamped so a probe abandoned without reporting an
// outcome expires after probeTTL instead of wedging recovery.
type breaker struct {
	failLimit   int64
	cooldown    time.Duration
	probeTTL    time.Duration // 0 = an in-flight probe never expires
	consecutive atomic.Int64
	openedUntil atomic.Int64 // unix nanos; 0 = closed
	probeStart  atomic.Int64 // unix nanos of the in-flight probe; 0 = none
}

// canRoute reports whether the breaker lets requests head toward the
// backend: closed, or open with the cooldown elapsed (a probe may go
// out). Read-only — never consumes the probe slot.
func (br *breaker) canRoute() bool {
	until := br.openedUntil.Load()
	return until == 0 || time.Now().UnixNano() >= until
}

// acquire is called once per attempt at send time. ok says whether the
// attempt may proceed; probe marks it as the recovery probe, whose
// holder must report fail()/succeed(), or release() the slot if the
// attempt is abandoned without a verdict.
func (br *breaker) acquire() (ok, probe bool) {
	until := br.openedUntil.Load()
	if until == 0 {
		return true, false
	}
	now := time.Now().UnixNano()
	if now < until {
		return false, false
	}
	for {
		cur := br.probeStart.Load()
		if cur != 0 && (br.probeTTL <= 0 || now-cur < int64(br.probeTTL)) {
			return false, false // another probe is in flight
		}
		if br.probeStart.CompareAndSwap(cur, now) {
			return true, true
		}
	}
}

// release frees the probe slot without recording an outcome — for
// attempts aborted by cancellation, which say the pool gave up on the
// request, nothing about the backend's health.
func (br *breaker) release() { br.probeStart.Store(0) }

func (br *breaker) fail() {
	br.probeStart.Store(0)
	n := br.consecutive.Add(1)
	if n >= br.failLimit {
		br.openedUntil.Store(time.Now().Add(br.cooldown).UnixNano())
	}
}

func (br *breaker) succeed() {
	br.consecutive.Store(0)
	br.openedUntil.Store(0)
	br.probeStart.Store(0)
}

func (br *breaker) open() bool {
	until := br.openedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// latencyRing keeps the last latencyWindow attempt durations for the
// adaptive hedge delay. Quantiles are computed on demand from a copy —
// the window is small and hedging only consults it once per request.
const latencyWindow = 128

type latencyRing struct {
	mu   sync.Mutex
	buf  [latencyWindow]time.Duration
	n    int // filled entries, <= latencyWindow
	next int
}

func (lr *latencyRing) add(d time.Duration) {
	lr.mu.Lock()
	lr.buf[lr.next] = d
	lr.next = (lr.next + 1) % latencyWindow
	if lr.n < latencyWindow {
		lr.n++
	}
	lr.mu.Unlock()
}

// p99 returns the 99th-percentile observed latency, or 0 when no
// samples exist yet.
func (lr *latencyRing) p99() time.Duration {
	lr.mu.Lock()
	n := lr.n
	tmp := make([]time.Duration, n)
	copy(tmp, lr.buf[:n])
	lr.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (99*n + 99) / 100 // ceil(0.99*n), 1-based
	if idx > n {
		idx = n
	}
	return tmp[idx-1]
}
