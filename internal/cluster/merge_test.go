package cluster

// Property tests for the scatter reductions: partition a ground-truth
// answer across shards, trim each shard to its own top-k (what a real
// shard returns), and check the merge reconstructs the global top-k —
// the invariant that keeps coordinator answers byte-identical to a
// single node's.

import (
	"math/rand"
	"sort"
	"testing"

	"pll/pll"
)

func sortNeighbors(ns []pll.Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Distance != ns[j].Distance {
			return ns[i].Distance < ns[j].Distance
		}
		return ns[i].Vertex < ns[j].Vertex
	})
}

func TestMergeNeighborsShardedTopK(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		n := 80 + rng.Intn(60)
		global := make([]pll.Neighbor, n)
		for i := range global {
			// Small distance range forces heavy ties, the case where the
			// (distance, vertex) tie-break matters.
			global[i] = pll.Neighbor{Vertex: int32(i), Distance: int64(rng.Intn(9))}
		}
		sortNeighbors(global)
		for _, shardCount := range []int{1, 2, 3, 5} {
			for _, k := range []int{1, 3, 10, n, n + 5} {
				// Partition by vertex: each shard holds a disjoint subset,
				// sorted and trimmed to its own top-k, like a label-
				// partitioned replica would answer.
				shards := make([][]pll.Neighbor, shardCount)
				for _, nb := range global {
					s := int(nb.Vertex) % shardCount
					shards[s] = append(shards[s], nb)
				}
				for s := range shards {
					sortNeighbors(shards[s])
					if len(shards[s]) > k {
						shards[s] = shards[s][:k]
					}
				}
				want := global
				if len(want) > k {
					want = want[:k]
				}
				got := mergeNeighbors(shards, k)
				if len(got) != len(want) {
					t.Fatalf("seed=%d shards=%d k=%d: %d merged, want %d", seed, shardCount, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed=%d shards=%d k=%d: merged[%d]=%v, want %v", seed, shardCount, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestMergeNeighborsReplicated(t *testing.T) {
	// Replicas all return the same answer; the merge must return it
	// unchanged (this is the byte-identity case in production).
	ns := []pll.Neighbor{{Vertex: 3, Distance: 1}, {Vertex: 9, Distance: 1}, {Vertex: 2, Distance: 4}}
	got := mergeNeighbors([][]pll.Neighbor{ns, ns, ns}, 3)
	if len(got) != 3 {
		t.Fatalf("merged %d, want 3", len(got))
	}
	for i := range ns {
		if got[i] != ns[i] {
			t.Fatalf("merged[%d]=%v, want %v", i, got[i], ns[i])
		}
	}
}

func TestMergeMatchesShardedTopK(t *testing.T) {
	for _, seed := range []int64{2, 11} {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(40)
		global := make([]pll.CompositeMatch, n)
		for i := range global {
			score := int64(rng.Intn(12))
			if rng.Intn(5) == 0 {
				score = -1 // unreachable term: sorts after every reachable match
			}
			global[i] = pll.CompositeMatch{Vertex: int32(i), Score: score}
		}
		sort.Slice(global, func(i, j int) bool { return matchLess(global[i], global[j]) })
		for _, shardCount := range []int{1, 3, 4} {
			for _, k := range []int{0, 1, 5, n} { // 0 = untrimmed
				shards := make([][]pll.CompositeMatch, shardCount)
				for _, m := range global {
					s := int(m.Vertex) % shardCount
					shards[s] = append(shards[s], m)
				}
				for s := range shards {
					sort.Slice(shards[s], func(i, j int) bool { return matchLess(shards[s][i], shards[s][j]) })
					if k > 0 && len(shards[s]) > k {
						shards[s] = shards[s][:k]
					}
				}
				want := global
				if k > 0 && len(want) > k {
					want = want[:k]
				}
				got := mergeMatches(shards, k)
				if len(got) != len(want) {
					t.Fatalf("seed=%d shards=%d k=%d: %d merged, want %d", seed, shardCount, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Vertex != want[i].Vertex || got[i].Score != want[i].Score {
						t.Fatalf("seed=%d shards=%d k=%d: merged[%d]=%v, want %v", seed, shardCount, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestRendezvousRankStability(t *testing.T) {
	cfg := Config{Backends: []string{"http://a:1", "http://b:1", "http://c:1"}}
	bs := []*backend{
		newBackend("http://a:1", "a:1", cfg),
		newBackend("http://b:1", "b:1", cfg),
		newBackend("http://c:1", "c:1", cfg),
	}
	for _, b := range bs {
		b.healthy.Store(true)
	}
	c := &Coordinator{backends: bs}
	// Removing one backend must not remap keys it did not own: every
	// key ranked (x, y, ...) keeps x as its primary when a different
	// backend drops out.
	moved := 0
	const keys = 500
	for i := 0; i < keys; i++ {
		key := hashName(string(rune('k')) + string(rune(i)))
		full := c.rank(key)
		loser := full[len(full)-1]
		loser.healthy.Store(false)
		reduced := c.rank(key)
		loser.healthy.Store(true)
		if reduced[0] != full[0] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d keys changed primary when a non-primary backend dropped", moved, keys)
	}
}
