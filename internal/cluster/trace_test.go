package cluster

// Distributed-tracing behavior at the coordinator: a scatter's trace
// carries one child span per live shard with the forwarded traceparent
// joining the replica's own trace to the same tree, and a hedged point
// lookup's losing attempt shows up as a span canceled with the
// "superseded" cause. Run under -race in CI: spans for losers finish
// after the handler has returned.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pll/internal/server"
	"pll/internal/trace"
)

// newTestTracer builds an always-on (or off) head-sampling tracer.
func newTestTracer(rate float64) *trace.Tracer {
	return trace.New(trace.Config{SampleRate: rate})
}

// spanNode mirrors the /debug/traces?id= span shape.
type spanNode struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
	InFlight bool              `json:"in_flight"`
	Children []*spanNode       `json:"children"`
}

type clusterTrace struct {
	TraceID string    `json:"trace_id"`
	Kind    string    `json:"kind"`
	Spans   int       `json:"spans"`
	Root    *spanNode `json:"root"`
}

// backendSpans collects the root's direct children that are backend
// attempt spans (named "backend <host>").
func backendSpans(root *spanNode) []*spanNode {
	var out []*spanNode
	for _, c := range root.Children {
		if strings.HasPrefix(c.Name, "backend ") {
			out = append(out, c)
		}
	}
	return out
}

// fetchTrace polls the coordinator's /debug/traces until the trace has
// at least want spans (loser spans End after the handler returns).
func fetchTrace(t *testing.T, coordURL, tid string, want int) *clusterTrace {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var tr clusterTrace
	for time.Now().Before(deadline) {
		st, _, body := do(t, http.MethodGet, coordURL+"/debug/traces?id="+tid, "")
		if st == http.StatusOK {
			tr = clusterTrace{}
			if err := json.Unmarshal([]byte(body), &tr); err != nil {
				t.Fatalf("bad trace JSON: %v (%s)", err, body)
			}
			if tr.Root != nil && len(backendSpans(tr.Root)) >= want {
				allDone := true
				for _, sp := range backendSpans(tr.Root) {
					if sp.InFlight {
						allDone = false
					}
				}
				if allDone {
					return &tr
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("trace %s never reached %d finished backend spans (last: %+v)", tid, want, tr)
	return nil
}

// TestScatterTraceOneSpanPerShard runs a sampled /knn scatter over real
// replicas and asserts the coordinator's trace holds one finished child
// span per live shard, each carrying the shard's path and a 200 status,
// and that the replica it hit adopted the same trace ID (the forwarded
// traceparent stitched both tiers into one tree).
func TestScatterTraceOneSpanPerShard(t *testing.T) {
	o := buildOracle(t, "undirected")
	// Replicas sample nothing on their own: only the coordinator's
	// forwarded sampled flag can put the request into a replica's ring.
	urls, replicas := startReplicas(t, o, 3, server.Config{TraceSampleRate: 0})
	_, coord := startCoordinator(t, urls, func(cfg *Config) {
		cfg.Stack.Tracer = newTestTracer(1)
	})

	st, hdr, _ := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")
	if st != http.StatusOK {
		t.Fatalf("scatter status %d", st)
	}
	tid := hdr.Get("X-Trace-Id")
	if tid == "" {
		t.Fatal("no X-Trace-Id on the scatter response")
	}

	tr := fetchTrace(t, coord.URL, tid, 3)
	if tr.Root.Name != "knn" {
		t.Fatalf("root span %q, want \"knn\"", tr.Root.Name)
	}
	legs := backendSpans(tr.Root)
	if len(legs) != 3 {
		t.Fatalf("%d backend spans, want one per live shard (3)", len(legs))
	}
	for _, sp := range legs {
		if sp.Attrs["status"] != "200" {
			t.Fatalf("scatter leg %q attrs = %v, want status=200", sp.Name, sp.Attrs)
		}
		if !strings.HasPrefix(sp.Attrs["path"], "/knn?") {
			t.Fatalf("scatter leg %q path attr = %q", sp.Name, sp.Attrs["path"])
		}
	}

	// The forwarded traceparent put the same trace into each replica's
	// own ring: the two tiers share one trace ID.
	joined := 0
	for _, rts := range replicas {
		st, _, _ := do(t, http.MethodGet, rts.URL+"/debug/traces?id="+tid, "")
		if st == http.StatusOK {
			joined++
		}
	}
	if joined != 3 {
		t.Fatalf("%d replicas adopted the coordinator's trace id, want 3", joined)
	}
}

// TestHedgeLoserSpanRecordsCancelCause pins the hedge-race trace shape:
// the slow primary's attempt span ends with the superseded cancel
// cause while the winning hedge's span carries hedged=true and a 200.
func TestHedgeLoserSpanRecordsCancelCause(t *testing.T) {
	// Two fake backends sharing an identity; the slow one never answers
	// within the test, so every lookup it primaries is won by the hedge.
	newFake := func(delay time.Duration) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"status":"ok","variant":"test","generation":1,"vertices":10,"checksum":"11"}`)
		})
		mux.HandleFunc("GET /distance", func(w http.ResponseWriter, r *http.Request) {
			if delay > 0 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(delay):
				}
			}
			fmt.Fprintln(w, `{"distance":1}`)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	slow := newFake(5 * time.Second)
	fast := newFake(0)

	c, err := New(Config{
		Backends:       []string{slow.URL, fast.URL},
		HedgeAfter:     5 * time.Millisecond,
		HealthInterval: time.Hour,
		RequestTimeout: 10 * time.Second,
		Stack:          server.StackConfig{Tracer: newTestTracer(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	// Walk routing keys until one primaries on the slow backend (the
	// hedge then wins); run a few in parallel so the race detector sees
	// loser spans ending concurrently with /debug/traces snapshots.
	var wg sync.WaitGroup
	tids := make([]string, 8)
	for i := range tids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, hdr, _ := do(t, http.MethodGet, fmt.Sprintf("%s/distance?s=%d&t=99", coord.URL, i), "")
			if st == http.StatusOK {
				tids[i] = hdr.Get("X-Trace-Id")
			}
		}(i)
	}
	wg.Wait()

	// Loser spans end asynchronously once cancellation propagates, so
	// poll until some trace shows both the winning hedge and the
	// superseded loser.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, tid := range tids {
			if tid == "" {
				continue
			}
			st, _, body := do(t, http.MethodGet, coord.URL+"/debug/traces?id="+tid, "")
			if st != http.StatusOK {
				continue
			}
			var tr clusterTrace
			if err := json.Unmarshal([]byte(body), &tr); err != nil || tr.Root == nil {
				continue
			}
			var winner, loser *spanNode
			for _, sp := range backendSpans(tr.Root) {
				if sp.Attrs["hedged"] == "true" && sp.Attrs["status"] == "200" {
					winner = sp
				}
				if sp.Attrs["cancel"] != "" {
					loser = sp
				}
			}
			if winner != nil && loser != nil {
				if !strings.Contains(loser.Attrs["cancel"], "superseded") {
					t.Fatalf("loser cancel cause = %q, want the superseded sentinel", loser.Attrs["cancel"])
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no trace showed a hedge win with a superseded loser span; hedge attempts are invisible to tracing")
}
