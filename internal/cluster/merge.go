package cluster

// Top-k reductions over per-shard answers. Both merges reproduce the
// orderings the replicas themselves produce (internal/hubsearch for
// neighbors, the composite engine for matches), including the
// tie-at-cutoff rule — smallest IDs win — so merging N identical
// replica answers yields exactly the answer again, and merging
// disjoint shard answers yields the global top-k.

import (
	"sort"

	"pll/pll"
)

// neighborsOrEmpty keeps "neighbors" a JSON array even with no hits.
func neighborsOrEmpty(ns []pll.Neighbor) []pll.Neighbor {
	if ns == nil {
		return []pll.Neighbor{}
	}
	return ns
}

// mergeNeighbors unions the shard answers, keeping the minimum
// distance per vertex, sorts by (distance, vertex) and trims to k.
// k < 0 means no trim (the caller applies its own limit).
func mergeNeighbors(shards [][]pll.Neighbor, k int) []pll.Neighbor {
	best := make(map[int32]int64)
	for _, ns := range shards {
		for _, nb := range ns {
			if d, ok := best[nb.Vertex]; !ok || nb.Distance < d {
				best[nb.Vertex] = nb.Distance
			}
		}
	}
	out := make([]pll.Neighbor, 0, len(best))
	for v, d := range best {
		out = append(out, pll.Neighbor{Vertex: v, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// matchLess is the composite result ordering: fully reachable matches
// first (Score >= 0), then ascending score, then vertex ID.
func matchLess(a, b pll.CompositeMatch) bool {
	if (a.Score < 0) != (b.Score < 0) {
		return b.Score < 0
	}
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Vertex < b.Vertex
}

// mergeMatches unions the shard answers, keeping the best-ordered
// match per vertex, sorts by matchLess and trims to k (0 = untrimmed).
func mergeMatches(shards [][]pll.CompositeMatch, k int) []pll.CompositeMatch {
	best := make(map[int32]pll.CompositeMatch)
	for _, ms := range shards {
		for _, m := range ms {
			if prev, ok := best[m.Vertex]; !ok || matchLess(m, prev) {
				best[m.Vertex] = m
			}
		}
	}
	out := make([]pll.CompositeMatch, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return matchLess(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
