package cluster

// Point-lookup proxying: /distance and /path are answered by exactly
// one replica, chosen by rendezvous hashing over the request's query
// string so the same pair keeps hitting the same replica's distance
// cache. Resilience comes from two mechanisms with different clocks:
// failover walks down the rendezvous ranking when an attempt fails
// (transport error or backend 5xx), and a hedge fires a duplicate
// attempt at the next-ranked backend when the primary is slower than
// its own recent p99 — whichever attempt answers first wins and the
// loser's request context is canceled.
//
// Backend responses relay verbatim — status, Content-Type, Retry-After
// and body bytes — so a routed answer is byte-identical to asking the
// replica directly, and a replica's 429 reaches the caller with its
// Retry-After intact.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"pll/internal/trace"
)

// statusClientClosedRequest is nginx's non-standard status for a
// client that disconnected before the response was written.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSONBytes writes pre-marshaled JSON (merged scatter responses).
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // nothing to do for a dead client
}

// marshalResponse marshals a response map with a trailing newline —
// the exact wire shape the replicas' json.Encoder produces, which is
// what keeps merged coordinator responses byte-identical to a single
// node's.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// decodeBody mirrors the replica servers' body decoding bit for bit —
// same size cap, same 413/400 split, same messages — so a request the
// coordinator rejects gets the byte-identical rejection a replica
// would have sent.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte limit", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		}
		return false
	}
	return true
}

// checkFanout bounds a client-controlled count by MaxBatch before any
// scatter: the coordinator must shed an oversized fan-out itself, not
// amplify it across the pool first.
func (c *Coordinator) checkFanout(w http.ResponseWriter, name string, v int) bool {
	if v < 1 || v > c.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "%s=%d outside [1,%d]", name, v, c.cfg.MaxBatch)
		return false
	}
	return true
}

// queryInt32 parses one required int32 query parameter (message-
// identical to the replicas').
func queryInt32(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return int32(v), nil
}

// queryInt64 parses one required int64 query parameter.
func queryInt64(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func clientIP(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// forwardHeaders carries the caller's identity to the backend: the
// X-Client-Id (so per-client rate limits key on the real client, not
// on the coordinator) and the proxy chain in X-Forwarded-For.
func forwardHeaders(out, in *http.Request) {
	if id := in.Header.Get("X-Client-Id"); id != "" {
		out.Header.Set("X-Client-Id", id)
	}
	ip := clientIP(in)
	if prior := in.Header.Get("X-Forwarded-For"); prior != "" {
		ip = prior + ", " + ip
	}
	out.Header.Set("X-Forwarded-For", ip)
}

// proxyResult is one completed backend attempt. err covers transport
// failures; an HTTP response of any status arrives with err == nil.
type proxyResult struct {
	b      *backend
	hedged bool
	status int
	header http.Header
	body   []byte
	err    error
}

// answered reports whether the backend produced a usable answer: any
// response below 500 (4xx is the client's problem, relayed verbatim).
func (pr *proxyResult) answered() bool {
	return pr.err == nil && pr.status < http.StatusInternalServerError
}

// errBreakerOpen marks an attempt the breaker rejected at send time
// (the probe slot was already taken); the callers treat it like any
// other failed attempt and move on to the next backend.
var errBreakerOpen = errors.New("circuit breaker open")

// errAttemptSuperseded is the cancel cause handed to in-flight attempts
// once another backend's answer has been relayed, so a hedge loser's
// trace span says it lost the race rather than generically "canceled".
var errAttemptSuperseded = errors.New("superseded: another backend answered first")

// fetch runs one attempt against b: build the backend request (same
// method, path and query; forwarded identity headers), read the whole
// response, and record the attempt in the backend's latency ring and
// breaker. The breaker's probe slot is consumed here, at send time —
// the routability checks that picked b are read-only. Attempts aborted
// by cancellation (a lost hedge race, a gone client) are not charged
// to the breaker — cancellation says the pool was slow, not that the
// backend failed — but a held probe slot is released so the breaker
// can still admit the next probe.
func (c *Coordinator) fetch(ctx context.Context, b *backend, in *http.Request, method, pathQuery string, body []byte, hedged bool) *proxyResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+pathQuery, rd)
	if err != nil {
		return &proxyResult{b: b, hedged: hedged, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	forwardHeaders(req, in)
	// One child span per backend attempt — a scatter leg, a hedge, a
	// failover hop — under the coordinator's request span, with the
	// attempt's span ID forwarded as the replica's traceparent parent so
	// the replica's own trace joins the same tree.
	treq := trace.FromContext(in.Context())
	sp := treq.StartSpan("backend " + b.host)
	sp.SetAttr("path", pathQuery)
	if hedged {
		sp.SetAttr("hedged", "true")
	}
	if tp := treq.Traceparent(sp); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	finishSpan := func(pr *proxyResult) *proxyResult {
		if pr.err != nil {
			sp.SetAttr("error", pr.err.Error())
			if ctx.Err() != nil {
				if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, ctx.Err()) {
					sp.SetAttr("cancel", cause.Error())
				}
			}
		} else {
			sp.SetInt("status", int64(pr.status))
		}
		sp.End()
		return pr
	}
	ok, probe := b.breaker.acquire()
	if !ok {
		return finishSpan(&proxyResult{b: b, hedged: hedged, err: errBreakerOpen})
	}
	settleAbort := func() {
		if probe {
			b.breaker.release()
		}
	}
	start := time.Now()
	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			b.observe(time.Since(start), false)
		} else {
			settleAbort()
		}
		return finishSpan(&proxyResult{b: b, hedged: hedged, err: err})
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		if ctx.Err() == nil {
			b.observe(time.Since(start), false)
		} else {
			settleAbort()
		}
		return finishSpan(&proxyResult{b: b, hedged: hedged, err: err})
	}
	b.observe(time.Since(start), resp.StatusCode < http.StatusInternalServerError)
	return finishSpan(&proxyResult{b: b, hedged: hedged, status: resp.StatusCode, header: resp.Header, body: data})
}

// hedgeDelay picks how long to give the primary before duplicating the
// request: the configured fixed delay, else the primary's own observed
// p99 clamped to [1ms, 250ms] (5ms before any samples exist). Hedging
// at the p99 bounds the duplicate-request overhead to roughly 1% of
// traffic while cutting the latency tail to the second backend's
// median.
func (c *Coordinator) hedgeDelay(primary *backend) time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	d := primary.lat.p99()
	if d == 0 {
		return 5 * time.Millisecond
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// relay writes a backend response through verbatim.
func relay(w http.ResponseWriter, pr *proxyResult) {
	if ct := pr.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := pr.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(pr.status)
	w.Write(pr.body) //nolint:errcheck // nothing to do for a dead client
}

// pointHandler serves one point-lookup endpoint (/distance, /path) by
// routing to the rendezvous-ranked backends with hedging and failover.
// Point lookups fail fast: with no usable backend the caller gets an
// immediate 503 rather than a degraded answer — a distance is either
// exact or an error.
func (c *Coordinator) pointHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		pathQuery := r.URL.Path
		if r.URL.RawQuery != "" {
			pathQuery += "?" + r.URL.RawQuery
		}
		ranked := c.rank(hashName(pathQuery))
		if len(ranked) == 0 {
			writeError(w, http.StatusServiceUnavailable, "no usable backends (%d configured)", len(c.backends))
			return
		}

		ctx := r.Context()
		// Buffered to the maximum number of attempts, so a loser's
		// goroutine can always deliver its result and exit after the
		// handler returned — no reaper, no leak.
		results := make(chan *proxyResult, len(ranked))
		cancels := make([]func(), 0, len(ranked))
		defer func() {
			for _, cancel := range cancels {
				cancel()
			}
		}()
		launched := 0
		launch := func(hedged bool) {
			b := ranked[launched]
			launched++
			// WithCancelCause under the timeout: when the handler returns
			// because another attempt won, the losers are canceled with
			// errAttemptSuperseded and their spans record that cause.
			actx, acancel := context.WithCancelCause(ctx)
			tctx, tcancel := context.WithTimeout(actx, c.cfg.RequestTimeout)
			cancels = append(cancels, func() {
				acancel(errAttemptSuperseded)
				tcancel()
			})
			if hedged {
				c.hedges.Add(1)
				b.hedges.Add(1)
			}
			go func() {
				results <- c.fetch(tctx, b, r, http.MethodGet, pathQuery, nil, hedged)
			}()
		}
		launch(false)

		hedgeTimer := time.NewTimer(c.hedgeDelay(ranked[0]))
		defer hedgeTimer.Stop()

		var lastFail *proxyResult
		received := 0
		for {
			select {
			case pr := <-results:
				received++
				if pr.answered() {
					if pr.hedged {
						c.hedgeWins.Add(1)
					}
					relay(w, pr)
					return
				}
				lastFail = pr
				if launched < len(ranked) {
					launch(false)
				} else if received == launched {
					// Every attempt failed: relay the last backend 5xx if
					// one answered, else report the transport error.
					if lastFail.err == nil {
						relay(w, lastFail)
					} else {
						writeError(w, http.StatusBadGateway, "backend %s: %v", lastFail.b.host, lastFail.err)
					}
					return
				}
			case <-hedgeTimer.C:
				if launched < len(ranked) {
					launch(true)
				}
			case <-ctx.Done():
				// The client went away before any attempt answered: stamp
				// the nginx-style client-closed-request status so the
				// Instrument layer doesn't book an abandoned lookup as an
				// implicit 200.
				w.WriteHeader(statusClientClosedRequest)
				return
			}
		}
	}
}
