// Package cluster is the distributed-serving tier: a scatter-gather
// coordinator fronting N pllserved replicas that together form one
// logical index.
//
// The coordinator treats each backend as one shard of the logical
// index. Today every shard is a full replica (replica-sharding for
// QPS); the wire contract — point lookups routed by rendezvous
// hashing, fan-out endpoints scattered to every shard and reduced with
// the hubsearch (distance, vertex) merge ordering — is exactly the one
// label-partitioned shards will need, so partitioning can land later
// without touching clients.
//
// Routing and resilience:
//
//   - /distance and /path route to one backend by rendezvous hashing of
//     the query pair, with health-checked failover through the
//     remaining backends and a hedged second request after a p99-based
//     delay (the loser is canceled).
//   - /batch splits the pair list into contiguous chunks across healthy
//     backends and reassembles the answers in order, so the response is
//     byte-identical to a single node while the scan cost spreads over
//     the pool.
//   - /knn, /range, /nearest and /query scatter to every shard and
//     merge the per-shard top-k answers; when a shard cannot answer the
//     response is served degraded with an explicit "incomplete" marker
//     instead of failing.
//   - Per-backend circuit breakers stop hammering a dying replica
//     between health sweeps; bounded connection pools cap the fan-out's
//     socket cost. A backend 429 propagates to the caller with its
//     Retry-After intact on point lookups; on scatters a shedding shard
//     only degrades the answer ("incomplete"), and the 429 is relayed
//     when every shard shed.
//
// Replicas must serve the same index: the health loop compares the
// backend-identity payload (/healthz variant, vertex count, content
// checksum) across the pool and refuses to route to backends whose
// identity disagrees with the majority.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pll/internal/server"
	"pll/internal/trace"
)

// Config tunes a Coordinator.
type Config struct {
	// Backends are the base URLs of the pllserved replicas
	// ("http://host:port"). At least one is required.
	Backends []string
	// MaxBatch caps every client-controlled fan-out before any scatter
	// (default 4096). It must match the backends' cap: a request the
	// coordinator forwards whole must not exceed what a replica accepts.
	MaxBatch int
	// MaxBody caps POST request bodies in bytes (default 1 MiB).
	MaxBody int64
	// HealthInterval is the delay between health sweeps (default 1s).
	HealthInterval time.Duration
	// RequestTimeout bounds one backend attempt (default 5s).
	RequestTimeout time.Duration
	// HedgeAfter is the fixed delay before a point lookup is hedged to
	// a second backend; 0 derives the delay from the primary backend's
	// observed p99 latency (clamped to [1ms, 250ms]).
	HedgeAfter time.Duration
	// BreakerFailures is the consecutive-failure count that opens a
	// backend's circuit breaker (default 3).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects before
	// letting a probe request through (default 1s).
	BreakerCooldown time.Duration
	// MaxConnsPerBackend bounds each backend's connection pool
	// (default 128): a scatter storm cannot grow sockets without bound.
	MaxConnsPerBackend int
	// Stack configures the shared middleware (admission control,
	// request logging) in front of the coordinator's own handlers.
	Stack server.StackConfig
}

const (
	defaultMaxBatch        = 4096
	defaultMaxBody         = 1 << 20
	defaultHealthInterval  = time.Second
	defaultRequestTimeout  = 5 * time.Second
	defaultBreakerFailures = 3
	defaultBreakerCooldown = time.Second
	defaultMaxConns        = 128
)

// Coordinator fans one HTTP surface out over the backend pool. Create
// with New, mount Handler, and Close when done.
type Coordinator struct {
	cfg      Config
	backends []*backend
	stack    *server.Stack
	mux      *http.ServeMux
	start    time.Time

	scatters   atomic.Int64 // fan-out requests served
	incomplete atomic.Int64 // fan-outs served degraded (missing shards)
	hedges     atomic.Int64 // hedge requests fired
	hedgeWins  atomic.Int64 // hedges whose response was used

	stopHealth chan struct{}
	healthDone chan struct{}
}

// New builds a coordinator over the configured backends and runs one
// synchronous health sweep so the pool state is populated before the
// first request.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = defaultMaxBody
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = defaultBreakerFailures
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	if cfg.MaxConnsPerBackend <= 0 {
		cfg.MaxConnsPerBackend = defaultMaxConns
	}
	c := &Coordinator{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		stopHealth: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	for i, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimSuffix(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %d: bad base URL %q", i, raw)
		}
		c.backends = append(c.backends, newBackend(u.String(), u.Host, cfg))
	}
	c.stack = server.NewStack(cfg.Stack,
		"healthz", "metrics", "stats", "distance", "path", "batch",
		"knn", "range", "nearest", "query", "debug")

	// Liveness and scrape endpoints stay instrument-only, mirroring the
	// single-node server: probes keep answering while the query surface
	// sheds load. /debug/traces joins them so a slow-query investigation
	// is never itself shed by admission control.
	c.mux.HandleFunc("GET /healthz", c.stack.Instrument("healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /metrics", c.stack.Instrument("metrics", c.handleMetrics))
	c.mux.HandleFunc("GET /debug/traces", c.stack.Instrument("debug", trace.DebugHandler(c.stack.Tracer())))
	c.mux.HandleFunc("GET /stats", c.stack.Guarded("stats", c.handleStats))
	c.mux.HandleFunc("GET /distance", c.stack.Guarded("distance", c.pointHandler("distance")))
	c.mux.HandleFunc("GET /path", c.stack.Guarded("path", c.pointHandler("path")))
	c.mux.HandleFunc("POST /batch", c.stack.Guarded("batch", c.handleBatch))
	c.mux.HandleFunc("GET /knn", c.stack.Guarded("knn", c.handleKNN))
	c.mux.HandleFunc("GET /range", c.stack.Guarded("range", c.handleRange))
	c.mux.HandleFunc("POST /nearest", c.stack.Guarded("nearest", c.handleNearest))
	c.mux.HandleFunc("POST /query", c.stack.Guarded("query", c.handleQuery))

	c.healthSweep()
	go c.healthLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP surface wrapped in the
// middleware stack's in-flight accounting (see Drain).
func (c *Coordinator) Handler() http.Handler { return c.stack.Wrap(c.mux) }

// Drain blocks until no request is executing or ctx expires; call it
// after http.Server.Shutdown so in-flight scatters finish before the
// connection pools are torn down.
func (c *Coordinator) Drain(ctx context.Context) error { return c.stack.Drain(ctx) }

// Close stops the health loop and releases the backend connection
// pools. In-flight requests should be drained first.
func (c *Coordinator) Close() {
	close(c.stopHealth)
	<-c.healthDone
	for _, b := range c.backends {
		b.client.CloseIdleConnections()
	}
}

// Healthy reports how many backends are currently routable.
func (c *Coordinator) Healthy() int {
	n := 0
	for _, b := range c.backends {
		if b.routable() {
			n++
		}
	}
	return n
}

// poolable returns the backends whose identity matches the pool (the
// shard denominator for scatters: an unreachable-but-matching backend
// counts as a missing shard, a mismatched one is not part of the
// logical index at all).
func (c *Coordinator) poolable() []*backend {
	out := make([]*backend, 0, len(c.backends))
	for _, b := range c.backends {
		if !b.mismatch.Load() {
			out = append(out, b)
		}
	}
	return out
}

// usable returns the backends a request may be sent to right now:
// poolable, passing health checks, and with a closed (or probing)
// breaker.
func (c *Coordinator) usable() []*backend {
	out := make([]*backend, 0, len(c.backends))
	for _, b := range c.backends {
		if b.routable() {
			out = append(out, b)
		}
	}
	return out
}

// rank orders the usable backends for one routing key by rendezvous
// (highest-random-weight) hashing: every coordinator instance ranks
// the same key identically, and removing a backend only remaps the
// keys it owned.
func (c *Coordinator) rank(key uint64) []*backend {
	usable := c.usable()
	type scored struct {
		b *backend
		s uint64
	}
	sc := make([]scored, len(usable))
	for i, b := range usable {
		sc[i] = scored{b, mix(b.seed ^ key)}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].s > sc[j].s })
	out := make([]*backend, len(sc))
	for i := range sc {
		out[i] = sc[i].b
	}
	return out
}

// mix is splitmix64's finalizer: a cheap, well-distributed permutation
// of the (backend seed XOR key) rendezvous input.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashName seeds a backend's rendezvous score from its base URL.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}
