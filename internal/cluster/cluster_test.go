package cluster

// End-to-end tests: real pllserved replicas (internal/server over real
// indexes) behind a real coordinator, compared byte-for-byte against
// asking a replica directly — the contract the CI smoke job checks
// again from the outside.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pll/internal/gen"
	"pll/internal/server"
	"pll/pll"
)

// buildOracle builds one searchable index variant over a random graph.
func buildOracle(t *testing.T, variant string) pll.Oracle {
	t.Helper()
	const (
		n    = 48
		m    = 120
		seed = 17
	)
	switch variant {
	case "undirected":
		gg := gen.ErdosRenyi(n, m, seed)
		pg, err := pll.NewGraph(n, gg.Edges())
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pll.Build(pg, pll.WithPaths(), pll.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "undirected-bp0":
		gg := gen.ErdosRenyi(n, m, seed+1)
		pg, err := pll.NewGraph(n, gg.Edges())
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pll.Build(pg, pll.WithBitParallel(0), pll.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "directed":
		dg := gen.RandomDigraph(n, m, seed)
		var arcs []pll.Edge
		for v := int32(0); v < int32(n); v++ {
			for _, u := range dg.OutNeighbors(v) {
				arcs = append(arcs, pll.Edge{U: v, V: u})
			}
		}
		pg, err := pll.NewDigraph(n, arcs)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pll.BuildDirected(pg, pll.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "weighted":
		gg := gen.ErdosRenyi(n, m, seed)
		wg := gen.RandomWeights(gg, 1, 10, seed+1)
		var edges []pll.WeightedEdge
		for v := int32(0); v < int32(n); v++ {
			ws := wg.Weights(v)
			for i, u := range wg.Neighbors(v) {
				if v < u {
					edges = append(edges, pll.WeightedEdge{U: v, V: u, Weight: ws[i]})
				}
			}
		}
		pg, err := pll.NewWeightedGraph(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pll.BuildWeighted(pg, pll.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	t.Fatalf("unknown variant %q", variant)
	return nil
}

// startReplicas serves the oracle from count independent replica
// servers (shared read-only index, separate server state — exactly a
// replica pool on one host).
func startReplicas(t *testing.T, o pll.Oracle, count int, cfg server.Config) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, count)
	servers := make([]*httptest.Server, count)
	for i := range urls {
		s := server.New(pll.NewConcurrentOracle(o), cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = ts
	}
	return urls, servers
}

func startCoordinator(t *testing.T, urls []string, mut func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := Config{Backends: urls, HealthInterval: 25 * time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// do issues one request and returns the status and body.
func do(t *testing.T, method, url, body string) (int, http.Header, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

// conformanceRequests is the endpoint table the coordinator must
// answer byte-identically to a direct replica: successes and error
// verdicts both.
var conformanceRequests = []struct {
	name, method, path, body string
}{
	{"distance", http.MethodGet, "/distance?s=1&t=40", ""},
	{"distance-same", http.MethodGet, "/distance?s=7&t=7", ""},
	{"distance-missing-t", http.MethodGet, "/distance?s=1", ""},
	{"distance-bad-vertex", http.MethodGet, "/distance?s=1&t=99999", ""},
	{"path", http.MethodGet, "/path?s=1&t=17", ""},
	{"batch-pairs", http.MethodPost, "/batch", `{"pairs":[[0,1],[2,3],[1,7],[4,9],[5,5],[40,2],[3,3]]}`},
	{"batch-source", http.MethodPost, "/batch", `{"source":0,"targets":[1,2,3,4,5,6,7,40,41]}`},
	{"batch-empty", http.MethodPost, "/batch", `{}`},
	{"batch-both", http.MethodPost, "/batch", `{"pairs":[[0,1]],"source":2,"targets":[3]}`},
	{"batch-bad-json", http.MethodPost, "/batch", `{not json`},
	{"knn", http.MethodGet, "/knn?s=0&k=7", ""},
	{"knn-all", http.MethodGet, "/knn?s=3&k=100", ""},
	{"knn-bad-k", http.MethodGet, "/knn?s=0&k=0", ""},
	{"range", http.MethodGet, "/range?s=0&r=3", ""},
	{"range-limit", http.MethodGet, "/range?s=0&r=4&limit=3", ""},
	{"range-negative", http.MethodGet, "/range?s=0&r=-1", ""},
	{"nearest", http.MethodPost, "/nearest", `{"source":0,"set":[1,5,9,13,21],"k":2}`},
	{"nearest-empty-set", http.MethodPost, "/nearest", `{"source":0,"set":[],"k":2}`},
	{"query-near", http.MethodPost, "/query", `{"where":{"near":{"source":0,"max_dist":4}},"k":5}`},
	{"query-and", http.MethodPost, "/query", `{"where":{"and":[{"near":{"source":0,"max_dist":4}},{"near":{"source":7,"max_dist":5}}]}}`},
	{"query-ranked", http.MethodPost, "/query", `{"where":{"near":{"source":5,"max_dist":4}},"rank":{"by":"max","terms":[{"source":5,"weight":2},{"source":13}]},"k":5}`},
	{"query-invalid", http.MethodPost, "/query", `{}`},
}

// TestCoordinatorByteIdentical is the core contract: with a whole
// pool, every coordinator answer — success or error — is byte-for-byte
// the answer a single replica gives.
func TestCoordinatorByteIdentical(t *testing.T) {
	for _, variant := range []string{"undirected", "undirected-bp0", "directed", "weighted"} {
		t.Run(variant, func(t *testing.T) {
			o := buildOracle(t, variant)
			urls, _ := startReplicas(t, o, 3, server.Config{})
			_, coord := startCoordinator(t, urls, nil)
			for _, req := range conformanceRequests {
				t.Run(req.name, func(t *testing.T) {
					ds, _, dbody := do(t, req.method, urls[0]+req.path, req.body)
					cs, _, cbody := do(t, req.method, coord.URL+req.path, req.body)
					if cs != ds {
						t.Fatalf("status %d, direct %d (direct body %q, coord body %q)", cs, ds, dbody, cbody)
					}
					if cbody != dbody {
						t.Fatalf("coordinator body differs from direct:\n coord: %q\ndirect: %q", cbody, dbody)
					}
				})
			}
		})
	}
}

// TestCoordinatorFanoutCaps pins that oversized fan-outs are shed at
// the coordinator with the replica's exact rejection, before any
// scatter (the amplification guard).
func TestCoordinatorFanoutCaps(t *testing.T) {
	o := buildOracle(t, "undirected")
	cfg := server.Config{MaxBatch: 4, MaxBody: 256}
	urls, _ := startReplicas(t, o, 2, cfg)
	_, coord := startCoordinator(t, urls, func(c *Config) {
		c.MaxBatch = 4
		c.MaxBody = 256
	})
	for _, req := range []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"batch-over", http.MethodPost, "/batch", `{"pairs":[[0,1],[1,2],[2,3],[3,4],[4,5]]}`, http.StatusRequestEntityTooLarge},
		{"knn-over", http.MethodGet, "/knn?s=0&k=5", "", http.StatusBadRequest},
		{"range-limit-over", http.MethodGet, "/range?s=0&r=3&limit=9", "", http.StatusBadRequest},
		{"nearest-set-over", http.MethodPost, "/nearest", `{"source":0,"set":[1,2,3,4,5],"k":2}`, http.StatusBadRequest},
		{"query-k-over", http.MethodPost, "/query", `{"where":{"near":{"source":0,"max_dist":3}},"k":9}`, http.StatusBadRequest},
		{"body-over", http.MethodPost, "/nearest", `{"source":0,"set":[` + strings.Repeat("1,", 200) + `1],"k":1}`, http.StatusRequestEntityTooLarge},
	} {
		t.Run(req.name, func(t *testing.T) {
			ds, _, dbody := do(t, req.method, urls[0]+req.path, req.body)
			cs, _, cbody := do(t, req.method, coord.URL+req.path, req.body)
			if cs != req.wantStatus || ds != req.wantStatus {
				t.Fatalf("status coord=%d direct=%d, want %d", cs, ds, req.wantStatus)
			}
			if cbody != dbody {
				t.Fatalf("coordinator rejection differs from direct:\n coord: %q\ndirect: %q", cbody, dbody)
			}
		})
	}
}

// waitUsable polls until the coordinator sees exactly n usable
// backends.
func waitUsable(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Healthy() == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d usable backends (has %d)", n, c.Healthy())
}

// TestPartialFailureDegradesExplicitly kills one replica of three and
// checks the degradation contract: fan-outs keep answering with
// "incomplete":true and unchanged results, point lookups fail over,
// and the coordinator's own /healthz stays 200 (degraded, not dead).
func TestPartialFailureDegradesExplicitly(t *testing.T) {
	o := buildOracle(t, "undirected")
	urls, servers := startReplicas(t, o, 3, server.Config{})
	c, coord := startCoordinator(t, urls, nil)
	waitUsable(t, c, 3)

	_, _, whole := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")
	if strings.Contains(whole, `"incomplete"`) {
		t.Fatalf("whole pool answered with incomplete marker: %s", whole)
	}

	servers[2].CloseClientConnections()
	servers[2].Close()
	waitUsable(t, c, 2)

	status, _, degraded := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")
	if status != http.StatusOK {
		t.Fatalf("degraded /knn: status %d, want 200 (%s)", status, degraded)
	}
	if !strings.Contains(degraded, `"incomplete":true`) {
		t.Fatalf("degraded /knn missing incomplete marker: %s", degraded)
	}
	// Replicas hold the full index, so the merged answer itself must
	// not change — only the marker differs.
	if strings.Replace(degraded, `"incomplete":true,`, "", 1) != whole {
		t.Fatalf("degraded answer differs beyond the marker:\ndegraded: %q\n   whole: %q", degraded, whole)
	}

	// Point lookups fail over to surviving replicas (the dead one still
	// owns ~1/3 of the rendezvous keyspace).
	for s := 0; s < 9; s++ {
		st, _, body := do(t, http.MethodGet, coord.URL+"/distance?s="+strconv.Itoa(s)+"&t=40", "")
		if st != http.StatusOK {
			t.Fatalf("distance s=%d after kill: status %d (%s)", s, st, body)
		}
	}

	hs, _, hbody := do(t, http.MethodGet, coord.URL+"/healthz", "")
	if hs != http.StatusOK {
		t.Fatalf("degraded /healthz: status %d, want 200", hs)
	}
	if !strings.Contains(hbody, `"status":"degraded"`) {
		t.Fatalf("degraded /healthz payload: %s", hbody)
	}

	// Kill the rest: point lookups and fan-outs now fail fast, and the
	// coordinator finally reports unavailable.
	servers[0].CloseClientConnections()
	servers[0].Close()
	servers[1].CloseClientConnections()
	servers[1].Close()
	waitUsable(t, c, 0)
	if st, _, _ := do(t, http.MethodGet, coord.URL+"/distance?s=0&t=1", ""); st != http.StatusServiceUnavailable {
		t.Fatalf("all-dead /distance: status %d, want 503", st)
	}
	if st, _, _ := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=3", ""); st != http.StatusServiceUnavailable {
		t.Fatalf("all-dead /knn: status %d, want 503", st)
	}
	if st, _, _ := do(t, http.MethodGet, coord.URL+"/healthz", ""); st != http.StatusServiceUnavailable {
		t.Fatalf("all-dead /healthz: status %d, want 503", st)
	}
}

// TestScatter429DegradesNotAborts pins that admission rejection is
// per-replica load, not a pool verdict: one shedding replica must not
// turn an otherwise successful scatter into a client-visible 429 — the
// merge answers degraded with "incomplete":true — and only when every
// shard sheds does the 429 (Retry-After intact) reach the caller.
func TestScatter429DegradesNotAborts(t *testing.T) {
	o := buildOracle(t, "undirected")
	var shed [3]atomic.Bool
	urls := make([]string, len(shed))
	for i := range urls {
		s := server.New(pll.NewConcurrentOracle(o), server.Config{})
		h := s.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// /healthz stays exempt: a loaded replica is still a live,
			// identity-matched pool member.
			if shed[i].Load() && r.URL.Path != "/healthz" {
				w.Header().Set("Retry-After", "3")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintln(w, `{"error":"server over capacity"}`)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	c, coord := startCoordinator(t, urls, nil)
	waitUsable(t, c, 3)

	_, _, whole := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")

	shed[2].Store(true)
	st, _, degraded := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")
	if st != http.StatusOK {
		t.Fatalf("scatter with one shedding replica: status %d, want 200 (%s)", st, degraded)
	}
	if !strings.Contains(degraded, `"incomplete":true`) {
		t.Fatalf("shedding shard not marked incomplete: %s", degraded)
	}
	if strings.Replace(degraded, `"incomplete":true,`, "", 1) != whole {
		t.Fatalf("degraded answer differs beyond the marker:\ndegraded: %q\n   whole: %q", degraded, whole)
	}

	// Every shard shedding: 429 is now the pool's verdict and relays
	// with its Retry-After.
	for i := range shed {
		shed[i].Store(true)
	}
	st, hdr, _ := do(t, http.MethodGet, coord.URL+"/knn?s=0&k=5", "")
	if st != http.StatusTooManyRequests {
		t.Fatalf("all-shed scatter: status %d, want 429", st)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Fatalf("all-shed Retry-After %q, want \"3\"", got)
	}
}

// TestBatchChunkFailover kills a replica WITHOUT waiting for a health
// sweep: chunks assigned to the dead backend must fail over to the
// survivors and the reassembled answer stays byte-identical.
func TestBatchChunkFailover(t *testing.T) {
	o := buildOracle(t, "undirected")
	urls, servers := startReplicas(t, o, 3, server.Config{})
	_, coord := startCoordinator(t, urls, func(c *Config) {
		// Health sweeps far apart: the coordinator still believes the
		// dead backend is healthy when the batch arrives.
		c.HealthInterval = time.Hour
		c.RequestTimeout = 2 * time.Second
	})

	body := `{"pairs":[[0,1],[2,3],[1,7],[4,9],[5,5],[40,2],[3,3],[8,30],[9,31]]}`
	_, _, want := do(t, http.MethodPost, urls[0]+"/batch", body)

	servers[1].CloseClientConnections()
	servers[1].Close()

	status, _, got := do(t, http.MethodPost, coord.URL+"/batch", body)
	if status != http.StatusOK {
		t.Fatalf("batch after kill: status %d (%s)", status, got)
	}
	if got != want {
		t.Fatalf("failover batch differs:\n got: %q\nwant: %q", got, want)
	}
}

// TestIdentityMismatchExcluded serves two different indexes behind one
// coordinator: the minority replica must be excluded from routing so
// merged answers never mix indexes.
func TestIdentityMismatchExcluded(t *testing.T) {
	a := buildOracle(t, "undirected")
	b := buildOracle(t, "undirected-bp0") // different graph, different checksum
	urlsA, _ := startReplicas(t, a, 2, server.Config{})
	urlsB, _ := startReplicas(t, b, 1, server.Config{})

	// Mixed pool: 2 votes for index A, 1 for index B.
	c2, coord2 := startCoordinator(t, []string{urlsA[0], urlsB[0], urlsA[1]}, nil)
	waitUsable(t, c2, 2)

	hs, _, hbody := do(t, http.MethodGet, coord2.URL+"/healthz", "")
	if hs != http.StatusOK {
		t.Fatalf("/healthz with mismatched replica: status %d", hs)
	}
	if !strings.Contains(hbody, `"mismatch":true`) {
		t.Fatalf("mismatched replica not flagged: %s", hbody)
	}

	// The scatter denominator excludes the mismatched backend entirely:
	// with both matching replicas up, answers are complete.
	st, _, body := do(t, http.MethodGet, coord2.URL+"/knn?s=0&k=5", "")
	if st != http.StatusOK || strings.Contains(body, `"incomplete"`) {
		t.Fatalf("pool with excluded mismatch should answer complete: status %d body %s", st, body)
	}
	ds, _, dbody := do(t, http.MethodGet, urlsA[0]+"/knn?s=0&k=5", "")
	if st != ds || body != dbody {
		t.Fatalf("answer over mixed pool differs from majority index:\n coord: %q\ndirect: %q", body, dbody)
	}
}

// TestBreaker pins the breaker state machine: opens after the
// configured consecutive failures, rejects while open, admits one
// send-time probe after the cooldown, closes on success — and
// routability reads never consume the probe slot.
func TestBreaker(t *testing.T) {
	br := breaker{failLimit: 3, cooldown: 30 * time.Millisecond, probeTTL: 10 * time.Second}
	for i := 0; i < 2; i++ {
		br.fail()
	}
	if ok, probe := br.acquire(); !ok || probe {
		t.Fatal("breaker opened before the failure limit")
	}
	br.fail()
	if br.canRoute() {
		t.Fatal("breaker routable right after opening")
	}
	if ok, _ := br.acquire(); ok {
		t.Fatal("attempt admitted while the breaker is open")
	}
	time.Sleep(40 * time.Millisecond)
	// Cooldown elapsed: any number of read-only routability checks (the
	// /metrics, /healthz and ranking paths) must leave the probe slot
	// untouched...
	for i := 0; i < 100; i++ {
		if !br.canRoute() {
			t.Fatal("cooled-down breaker not routable")
		}
	}
	// ...and send time still admits exactly one probe.
	if ok, probe := br.acquire(); !ok || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	if ok, _ := br.acquire(); ok {
		t.Fatal("second probe admitted while the first is in flight")
	}
	br.succeed()
	if ok, probe := br.acquire(); !ok || probe {
		t.Fatal("breaker not closed after a success")
	}
	if !br.canRoute() {
		t.Fatal("breaker not routable after a success")
	}
}

// TestBreakerProbeReleaseAndExpiry pins the two self-heal paths for a
// probe slot whose holder never reports an outcome: an explicit
// release (attempt aborted by cancellation) frees it immediately, and
// an abandoned slot expires after probeTTL — either way the breaker
// cannot be stranded open.
func TestBreakerProbeReleaseAndExpiry(t *testing.T) {
	br := breaker{failLimit: 1, cooldown: 5 * time.Millisecond, probeTTL: 30 * time.Millisecond}
	br.fail()
	time.Sleep(10 * time.Millisecond)
	if ok, probe := br.acquire(); !ok || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	br.release()
	if ok, probe := br.acquire(); !ok || !probe {
		t.Fatal("released probe slot not reusable")
	}
	// Abandon this probe without any report: before probeTTL the slot
	// stays held, after it the slot is reclaimable.
	if ok, _ := br.acquire(); ok {
		t.Fatal("probe slot double-acquired before expiry")
	}
	time.Sleep(40 * time.Millisecond)
	if ok, probe := br.acquire(); !ok || !probe {
		t.Fatal("abandoned probe never expired; breaker stranded open")
	}
}
