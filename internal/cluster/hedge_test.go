package cluster

// Hedged-request behavior against instrumented fake backends: a slow
// primary must be overtaken by a hedge to the second-ranked backend,
// and the loser's request must be canceled — observed from inside the
// slow handler — rather than left running. Run under -race in CI to
// catch leaked goroutines touching freed state.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a minimal replica: a healthz identity (so the
// coordinator pools it) and a /distance that can be made slow. It
// counts how many in-flight requests were canceled under it.
type fakeBackend struct {
	ts       *httptest.Server
	name     string
	delay    time.Duration
	canceled atomic.Int64
	served   atomic.Int64
}

func newFakeBackend(t *testing.T, name, checksum string, delay time.Duration) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{name: name, delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","variant":"test","generation":1,"vertices":10,"checksum":%q}`+"\n", checksum)
	})
	mux.HandleFunc("GET /distance", func(w http.ResponseWriter, r *http.Request) {
		if fb.delay > 0 {
			select {
			case <-r.Context().Done():
				fb.canceled.Add(1)
				return
			case <-time.After(fb.delay):
			}
		}
		fb.served.Add(1)
		fmt.Fprintf(w, `{"from":%q}`+"\n", fb.name)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

// TestHedgeOvertakesSlowPrimaryAndCancelsLoser spreads point lookups
// over a pool with one pathologically slow backend. Every lookup whose
// rendezvous primary is the slow backend must be answered by the
// hedge, well under the slow backend's delay, and the abandoned slow
// attempt must observe its context cancel.
func TestHedgeOvertakesSlowPrimaryAndCancelsLoser(t *testing.T) {
	const slowDelay = 2 * time.Second
	slow := newFakeBackend(t, "slow", "cafef00d", slowDelay)
	fast := newFakeBackend(t, "fast", "cafef00d", 0)

	c, err := New(Config{
		Backends:       []string{slow.ts.URL, fast.ts.URL},
		HedgeAfter:     5 * time.Millisecond,
		HealthInterval: time.Hour, // the synchronous sweep in New is enough
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	if got := c.Healthy(); got != 2 {
		t.Fatalf("healthy backends = %d, want 2", got)
	}

	start := time.Now()
	for i := 0; i < 24; i++ {
		st, _, body := do(t, http.MethodGet, coord.URL+"/distance?s="+strconv.Itoa(i)+"&t=99", "")
		if st != http.StatusOK {
			t.Fatalf("lookup %d: status %d (%s)", i, st, body)
		}
		if body != `{"from":"fast"}`+"\n" {
			t.Fatalf("lookup %d answered by the slow backend: %q", i, body)
		}
	}
	// 24 lookups, each answered by the fast backend either directly
	// (fast primary) or via a ~5ms hedge: nowhere near the 2s delay.
	if elapsed := time.Since(start); elapsed > slowDelay {
		t.Fatalf("lookups took %v; hedging did not overtake the slow primary", elapsed)
	}

	if c.hedges.Load() == 0 {
		t.Fatal("no hedges fired despite a slow primary")
	}
	if c.hedgeWins.Load() == 0 {
		t.Fatal("no hedge ever won despite the primary sleeping 2s")
	}
	// Losers are canceled promptly, not abandoned until their timeout:
	// give in-flight cancels a moment to propagate, then check the slow
	// handler saw them.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && slow.canceled.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if slow.canceled.Load() == 0 {
		t.Fatal("slow backend never observed a canceled request; hedging leaks its losers")
	}
	if slow.served.Load() != 0 {
		t.Fatalf("slow backend completed %d requests; they should all have been canceled", slow.served.Load())
	}
}

// TestBreakerRecoveryUnderMetricsScrapes reproduces the stuck-open
// scenario: while a backend's breaker cools down, /metrics and
// /healthz are scraped continuously (both read routability). Those
// reads must not consume the half-open probe slot — once the backend
// recovers, the next real request must still get the probe through and
// close the breaker.
func TestBreakerRecoveryUnderMetricsScrapes(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok","variant":"test","generation":1,"vertices":10,"checksum":"bb"}`)
	})
	mux.HandleFunc("GET /distance", func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"s":0,"t":1,"distance":1,"reachable":true}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := New(Config{
		Backends:        []string{ts.URL},
		HealthInterval:  time.Hour, // the synchronous sweep in New is enough
		BreakerFailures: 2,
		BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	for i := 0; i < 2; i++ {
		do(t, http.MethodGet, coord.URL+"/distance?s=0&t=1", "")
	}
	if !c.backends[0].breaker.open() {
		t.Fatal("breaker did not open after consecutive 5xx answers")
	}

	// Backend recovers; scrape straight through (and well past) the
	// cooldown window.
	failing.Store(false)
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		do(t, http.MethodGet, coord.URL+"/metrics", "")
		do(t, http.MethodGet, coord.URL+"/healthz", "")
		time.Sleep(2 * time.Millisecond)
	}

	st, _, body := do(t, http.MethodGet, coord.URL+"/distance?s=0&t=1", "")
	if st != http.StatusOK {
		t.Fatalf("recovered backend never probed: status %d (%s); scrapes consumed the probe slot", st, body)
	}
	if c.backends[0].breaker.open() {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestHedgeRetryAfterPropagation pins the 429 contract through the
// proxy: a backend shedding load answers through the coordinator with
// its status and Retry-After intact.
func TestRetryAfterPropagation(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok","variant":"test","generation":1,"vertices":10,"checksum":"aa"}`)
	})
	var gotClientID atomic.Value
	mux.HandleFunc("GET /distance", func(w http.ResponseWriter, r *http.Request) {
		gotClientID.Store(r.Header.Get("X-Client-Id") + "|" + r.Header.Get("X-Forwarded-For"))
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"server over capacity (client rate limit); retry after 7s"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := New(Config{Backends: []string{ts.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	req, _ := http.NewRequest(http.MethodGet, coord.URL+"/distance?s=0&t=1", nil)
	req.Header.Set("X-Client-Id", "tenant-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want \"7\"", got)
	}
	forwarded, _ := gotClientID.Load().(string)
	if forwarded == "" || forwarded[:10] != "tenant-42|" || len(forwarded) <= 10 {
		t.Fatalf("backend saw identity headers %q; want X-Client-Id=tenant-42 and a non-empty X-Forwarded-For", forwarded)
	}
}
