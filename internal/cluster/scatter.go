package cluster

// Fan-out endpoints. /knn, /range, /nearest and /query scatter to
// every shard of the logical index and reduce the per-shard top-k
// answers with the same (distance, vertex) merge ordering the replicas
// themselves use (internal/hubsearch), so a complete merged response
// is byte-identical to asking one replica directly. /batch instead
// splits its pair list into contiguous chunks across the pool — the
// answer is positional, so the reduction is concatenation — which is
// what turns N replicas into N× batch throughput.
//
// Partial failure is explicit, not silent: a scatter that could not
// get a 200 from every shard (unreachable, erroring, or shedding load
// with a 429) still answers, with "incomplete": true added to the
// response, and the degradation is counted on /metrics. Every
// client-controlled fan-out knob is checked against MaxBatch BEFORE
// any scatter, so an oversized request is shed at the coordinator
// instead of amplified across the pool.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"pll/pll"
)

// scatterAll sends one request to every usable backend concurrently
// and returns the completed attempts in backend order.
func (c *Coordinator) scatterAll(in *http.Request, method, pathQuery string, body []byte) []*proxyResult {
	usable := c.usable()
	results := make([]*proxyResult, len(usable))
	var wg sync.WaitGroup
	for i, b := range usable {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(in.Context(), c.cfg.RequestTimeout)
			defer cancel()
			results[i] = c.fetch(ctx, b, in, method, pathQuery, body, false)
		}(i, b)
	}
	wg.Wait()
	return results
}

// collectScatter sorts the shard replies: 200s are returned for
// merging; a 4xx verdict about the request itself (bad request, 409
// capability conflict) is relayed verbatim — every replica of one
// index gives the same verdict, so the first one speaks for the pool.
// A 429 is NOT such a verdict: admission rejection is one replica's
// momentary load, so a shedding shard degrades the scatter like an
// unreachable one, and the 429 (Retry-After intact) is relayed only
// when no shard returned 200 at all. done reports that a response has
// already been written. incomplete is measured against the poolable
// backend count — an unreachable shard is a missing shard, whether it
// failed just now or has been down for an hour.
func (c *Coordinator) collectScatter(w http.ResponseWriter, replies []*proxyResult) (oks []*proxyResult, incomplete bool, done bool) {
	var fail, shed *proxyResult
	for _, pr := range replies {
		switch {
		case pr.err == nil && pr.status == http.StatusOK:
			oks = append(oks, pr)
		case pr.err == nil && pr.status == http.StatusTooManyRequests:
			if shed == nil {
				shed = pr
			}
		case pr.err == nil && pr.status < http.StatusInternalServerError:
			relay(w, pr)
			return nil, false, true
		default:
			if fail == nil {
				fail = pr
			}
		}
	}
	if len(oks) == 0 {
		switch {
		case shed != nil:
			relay(w, shed)
		case fail == nil:
			writeError(w, http.StatusServiceUnavailable, "no usable backends (%d configured)", len(c.backends))
		case fail.err != nil:
			writeError(w, http.StatusBadGateway, "backend %s: %v", fail.b.host, fail.err)
		default:
			relay(w, fail)
		}
		return nil, false, true
	}
	c.scatters.Add(1)
	if incomplete = len(oks) < len(c.poolable()); incomplete {
		c.incomplete.Add(1)
	}
	return oks, incomplete, false
}

// decodeShard unmarshals one 200 shard body. A 200 with an undecodable
// body is a protocol violation, answered 502, not a partial failure.
func decodeShard[T any](w http.ResponseWriter, pr *proxyResult, v *T) bool {
	if err := json.Unmarshal(pr.body, v); err != nil {
		writeError(w, http.StatusBadGateway, "backend %s: bad response: %v", pr.b.host, err)
		return false
	}
	return true
}

func (c *Coordinator) handleKNN(w http.ResponseWriter, r *http.Request) {
	sv, err := queryInt32(r, "s")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt32(r, "k")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !c.checkFanout(w, "k", int(k)) {
		return
	}
	replies := c.scatterAll(r, http.MethodGet, fmt.Sprintf("/knn?s=%d&k=%d", sv, k), nil)
	oks, incomplete, done := c.collectScatter(w, replies)
	if done {
		return
	}
	shards := make([][]pll.Neighbor, 0, len(oks))
	for _, pr := range oks {
		var sr struct {
			Neighbors []pll.Neighbor `json:"neighbors"`
		}
		if !decodeShard(w, pr, &sr) {
			return
		}
		shards = append(shards, sr.Neighbors)
	}
	merged := mergeNeighbors(shards, int(k))
	resp := map[string]any{
		"s":         sv,
		"k":         k,
		"count":     len(merged),
		"neighbors": neighborsOrEmpty(merged),
	}
	if incomplete {
		resp["incomplete"] = true
	}
	body, err := marshalResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSONBytes(w, http.StatusOK, body)
}

func (c *Coordinator) handleRange(w http.ResponseWriter, r *http.Request) {
	sv, err := queryInt32(r, "s")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := queryInt64(r, "r")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if radius < 0 {
		writeError(w, http.StatusBadRequest, "r=%d must be non-negative", radius)
		return
	}
	limit := c.cfg.MaxBatch
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		if !c.checkFanout(w, "limit", v) {
			return
		}
		limit = v
	}
	// The limit is forwarded explicitly: the replicas' default is their
	// own MaxBatch, which the deployment contract keeps equal to the
	// coordinator's, but an explicit value never depends on it.
	replies := c.scatterAll(r, http.MethodGet, fmt.Sprintf("/range?s=%d&r=%d&limit=%d", sv, radius, limit), nil)
	oks, incomplete, done := c.collectScatter(w, replies)
	if done {
		return
	}
	shards := make([][]pll.Neighbor, 0, len(oks))
	total, totalExact, truncated := 0, true, false
	for _, pr := range oks {
		var sr struct {
			Total      int            `json:"total"`
			TotalExact bool           `json:"total_exact"`
			Truncated  bool           `json:"truncated"`
			Neighbors  []pll.Neighbor `json:"neighbors"`
		}
		if !decodeShard(w, pr, &sr) {
			return
		}
		shards = append(shards, sr.Neighbors)
		// total is exact on a single node; across shards each reports a
		// count over its own slice of the index, so the merged total is
		// the best lower bound we have (max) and stays exact only when
		// every shard's was.
		total = max(total, sr.Total)
		totalExact = totalExact && sr.TotalExact
		truncated = truncated || sr.Truncated
	}
	merged := mergeNeighbors(shards, -1)
	if len(merged) > limit {
		merged = merged[:limit]
		truncated = true
	}
	total = max(total, len(merged))
	resp := map[string]any{
		"s":           sv,
		"radius":      radius,
		"count":       len(merged),
		"total":       total,
		"total_exact": totalExact,
		"truncated":   truncated,
		"neighbors":   neighborsOrEmpty(merged),
	}
	if incomplete {
		resp["incomplete"] = true
	}
	body, err := marshalResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// nearestRequest mirrors the replicas' POST /nearest body shape.
type nearestRequest struct {
	Source int32   `json:"source"`
	Set    []int32 `json:"set"`
	K      int     `json:"k"`
}

func (c *Coordinator) handleNearest(w http.ResponseWriter, r *http.Request) {
	var req nearestRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if len(req.Set) == 0 {
		writeError(w, http.StatusBadRequest, `nearest body needs a non-empty "set"`)
		return
	}
	if !c.checkFanout(w, "set size", len(req.Set)) || !c.checkFanout(w, "k", req.K) {
		return
	}
	fwd, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replies := c.scatterAll(r, http.MethodPost, "/nearest", fwd)
	oks, incomplete, done := c.collectScatter(w, replies)
	if done {
		return
	}
	shards := make([][]pll.Neighbor, 0, len(oks))
	setSize := 0
	for _, pr := range oks {
		var sr struct {
			SetSize   int            `json:"set_size"`
			Neighbors []pll.Neighbor `json:"neighbors"`
		}
		if !decodeShard(w, pr, &sr) {
			return
		}
		shards = append(shards, sr.Neighbors)
		setSize = max(setSize, sr.SetSize)
	}
	merged := mergeNeighbors(shards, req.K)
	resp := map[string]any{
		"source":    req.Source,
		"k":         req.K,
		"set_size":  setSize,
		"count":     len(merged),
		"neighbors": neighborsOrEmpty(merged),
	}
	if incomplete {
		resp["incomplete"] = true
	}
	body, err := marshalResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSONBytes(w, http.StatusOK, body)
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req pll.CompositeRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Normalize()
	if !c.checkFanout(w, "constraint fan-out", req.Fanout()) {
		return
	}
	if req.K > c.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "k=%d outside [0,%d]", req.K, c.cfg.MaxBatch)
		return
	}
	canon, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replies := c.scatterAll(r, http.MethodPost, "/query", canon)
	oks, incomplete, done := c.collectScatter(w, replies)
	if done {
		return
	}
	shards := make([][]pll.CompositeMatch, 0, len(oks))
	total, totalExact, truncated := 0, true, false
	for _, pr := range oks {
		var sr struct {
			Total      int                  `json:"total"`
			TotalExact bool                 `json:"total_exact"`
			Truncated  bool                 `json:"truncated"`
			Matches    []pll.CompositeMatch `json:"matches"`
		}
		if !decodeShard(w, pr, &sr) {
			return
		}
		shards = append(shards, sr.Matches)
		total = max(total, sr.Total)
		totalExact = totalExact && sr.TotalExact
		truncated = truncated || sr.Truncated
	}
	merged := mergeMatches(shards, req.K)
	if len(merged) > c.cfg.MaxBatch {
		merged = merged[:c.cfg.MaxBatch]
		truncated = true
	}
	if merged == nil {
		merged = []pll.CompositeMatch{}
	}
	total = max(total, len(merged))
	resp := map[string]any{
		"count":       len(merged),
		"total":       total,
		"total_exact": totalExact,
		"truncated":   truncated,
		"matches":     merged,
	}
	if incomplete {
		resp["incomplete"] = true
	}
	body, err := marshalResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// batchRequest mirrors the replicas' POST /batch body shape.
type batchRequest struct {
	Pairs   [][2]int32 `json:"pairs,omitempty"`
	Source  *int32     `json:"source,omitempty"`
	Targets []int32    `json:"targets,omitempty"`
}

// handleBatch splits the (validated, capped) pair list into contiguous
// chunks, one per usable backend, and reassembles the distances in
// order — the response is byte-identical to a single node's while each
// replica scans only 1/N of the pairs. A chunk whose backend fails
// retries on the rest of the pool; the batch only fails when a chunk
// exhausts every backend (positional answers cannot be served
// partially).
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	switch {
	case req.Source != nil && len(req.Targets) > 0 && len(req.Pairs) == 0:
	case req.Source == nil && len(req.Targets) == 0 && len(req.Pairs) > 0:
	default:
		writeError(w, http.StatusBadRequest, `batch body needs either "pairs" or "source"+"targets"`)
		return
	}
	n := len(req.Pairs) + len(req.Targets)
	if n > c.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d pairs exceeds the %d limit", n, c.cfg.MaxBatch)
		return
	}
	usable := c.usable()
	if len(usable) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no usable backends (%d configured)", len(c.backends))
		return
	}

	chunks := min(len(usable), n)
	type chunkResult struct {
		distances []int64
		fail      *proxyResult
	}
	results := make([]chunkResult, chunks)
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		var sub any
		if req.Source != nil {
			sub = map[string]any{"source": *req.Source, "targets": req.Targets[lo:hi]}
		} else {
			sub = map[string]any{"pairs": req.Pairs[lo:hi]}
		}
		body, err := json.Marshal(sub)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			results[i] = chunkResult{}
			pr := c.batchChunk(r, usable, i, body)
			if pr.err != nil || pr.status != http.StatusOK {
				results[i].fail = pr
				return
			}
			var sr struct {
				Distances []int64 `json:"distances"`
			}
			if err := json.Unmarshal(pr.body, &sr); err != nil {
				results[i].fail = &proxyResult{b: pr.b, err: fmt.Errorf("bad response: %w", err)}
				return
			}
			results[i].distances = sr.Distances
		}(i, body)
	}
	wg.Wait()

	distances := make([]int64, 0, n)
	for i := range results {
		if pr := results[i].fail; pr != nil {
			if pr.err != nil {
				writeError(w, http.StatusBadGateway, "backend %s: %v", pr.b.host, pr.err)
			} else {
				relay(w, pr)
			}
			return
		}
		distances = append(distances, results[i].distances...)
	}
	body, err := marshalResponse(map[string]any{"count": n, "distances": distances})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// batchChunk posts one chunk, starting at the backend the chunk was
// assigned to and failing over through the rest of the usable pool. A
// sub-500 response is final (200 to merge, 4xx to relay); transport
// errors and 5xxs keep walking.
func (c *Coordinator) batchChunk(in *http.Request, usable []*backend, first int, body []byte) *proxyResult {
	var last *proxyResult
	for j := range usable {
		b := usable[(first+j)%len(usable)]
		pr := func() *proxyResult {
			ctx, cancel := context.WithTimeout(in.Context(), c.cfg.RequestTimeout)
			defer cancel()
			return c.fetch(ctx, b, in, http.MethodPost, "/batch", body, false)
		}()
		if pr.answered() {
			return pr
		}
		last = pr
	}
	return last
}
