package cluster

// Health sweeps: once per interval every backend's /healthz is probed
// concurrently. A probe both decides reachability and collects the
// backend-identity payload (variant, vertex count, checksum) the
// majority vote runs over — backends disagreeing with the majority are
// marked mismatched and excluded from routing until they agree again
// (typically after an operator reloads the right index into them).
//
// Generation is deliberately excluded from the vote: replicas reloaded
// at different times legitimately differ in generation while serving
// identical content, which is exactly what the checksum certifies.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// healthPayload is the wire shape of a replica's GET /healthz response.
type healthPayload struct {
	Status     string `json:"status"`
	Variant    string `json:"variant"`
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Checksum   string `json:"checksum"`
}

func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-t.C:
			c.healthSweep()
		}
	}
}

// healthSweep probes every backend once and recomputes mismatch flags
// from the majority identity among reachable backends.
func (c *Coordinator) healthSweep() {
	var wg sync.WaitGroup
	for _, b := range c.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c.probe(b)
		}(b)
	}
	wg.Wait()

	// Majority vote over the identities of reachable backends. Ties
	// break toward the identity of the earliest-configured backend, so
	// a 1-vs-1 split keeps the pool deterministic rather than flapping.
	votes := make(map[identity]int)
	order := make(map[identity]int)
	for i, b := range c.backends {
		if !b.healthy.Load() {
			continue
		}
		id, _ := b.identitySnapshot()
		votes[id]++
		if _, seen := order[id]; !seen {
			order[id] = i
		}
	}
	var best identity
	bestVotes := 0
	for id, n := range votes {
		if n > bestVotes || (n == bestVotes && order[id] < order[best]) {
			best, bestVotes = id, n
		}
	}
	for _, b := range c.backends {
		if !b.healthy.Load() {
			// Unreachable backends keep their previous mismatch verdict;
			// flipping them to matching would shrink the scatter
			// denominator and hide the degradation.
			continue
		}
		id, _ := b.identitySnapshot()
		b.mismatch.Store(bestVotes > 0 && id != best)
	}
}

// probe runs one /healthz round trip against a backend, updating its
// reachability flag and identity snapshot. Probe failures do not feed
// the circuit breaker: the breaker tracks request traffic, the health
// flag tracks the probe channel, and either alone can take a backend
// out of rotation.
func (c *Coordinator) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	defer resp.Body.Close()
	var hp healthPayload
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&hp) != nil {
		b.healthy.Store(false)
		return
	}
	b.setIdentity(identity{Variant: hp.Variant, Vertices: hp.Vertices, Checksum: hp.Checksum}, hp.Generation)
	b.healthy.Store(true)
}
