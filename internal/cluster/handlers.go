package cluster

// The coordinator's own observability surface. /healthz answers the
// pool's health (200 while at least one backend is usable — a degraded
// pool still serves) with the pooled index identity and per-backend
// status; /stats summarizes routing counters; /metrics appends the
// per-backend series to the shared middleware stack's families.

import (
	"fmt"
	"net/http"
	"time"
)

// poolIdentity is the majority identity among healthy backends (the
// identity scatters are served from), or false when nothing is healthy.
func (c *Coordinator) poolIdentity() (identity, uint64, bool) {
	for _, b := range c.backends {
		if b.healthy.Load() && !b.mismatch.Load() {
			id, gen := b.identitySnapshot()
			return id, gen, true
		}
	}
	return identity{}, 0, false
}

func (c *Coordinator) backendStatus() []map[string]any {
	out := make([]map[string]any, 0, len(c.backends))
	for _, b := range c.backends {
		id, gen := b.identitySnapshot()
		out = append(out, map[string]any{
			"backend":      b.host,
			"healthy":      b.healthy.Load(),
			"mismatch":     b.mismatch.Load(),
			"breaker_open": b.breaker.open(),
			"generation":   gen,
			"checksum":     id.Checksum,
		})
	}
	return out
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	usable := len(c.usable())
	status, code := "ok", http.StatusOK
	switch {
	case usable == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case usable < len(c.poolable()):
		status = "degraded"
	}
	resp := map[string]any{
		"status":   status,
		"backends": c.backendStatus(),
		"usable":   usable,
		"pool":     len(c.poolable()),
	}
	// The pooled identity rides along in the same shape a replica
	// reports, so anything probing /healthz for the served index
	// (deploy checks, the loadtest harness) works against either tier.
	if id, gen, ok := c.poolIdentity(); ok {
		resp["variant"] = id.Variant
		resp["vertices"] = id.Vertices
		resp["checksum"] = id.Checksum
		resp["generation"] = gen
	}
	writeJSON(w, code, resp)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	backends := make([]map[string]any, 0, len(c.backends))
	for _, b := range c.backends {
		backends = append(backends, map[string]any{
			"backend":  b.host,
			"healthy":  b.healthy.Load(),
			"mismatch": b.mismatch.Load(),
			"ok":       b.ok.Load(),
			"errors":   b.errs.Load(),
			"hedges":   b.hedges.Load(),
			"p99_ms":   float64(b.lat.p99()) / float64(time.Millisecond),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"coordinator": map[string]any{
			"uptime_seconds":      time.Since(c.start).Seconds(),
			"backends":            len(c.backends),
			"usable":              len(c.usable()),
			"scatters":            c.scatters.Load(),
			"scatters_incomplete": c.incomplete.Load(),
			"hedges":              c.hedges.Load(),
			"hedge_wins":          c.hedgeWins.Load(),
		},
		"backends": backends,
		"tracing":  c.stack.TraceStats(),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	// The per-endpoint request/latency/shed families come from the
	// shared middleware stack — the same series a single replica emits,
	// so dashboards work unchanged against either tier.
	c.stack.WriteMetrics(w)

	fmt.Fprintf(w, "# HELP pll_backend_up Whether the backend is currently routable (healthy, identity-matched, breaker closed).\n")
	fmt.Fprintf(w, "# TYPE pll_backend_up gauge\n")
	for _, b := range c.backends {
		up := 0
		if b.routable() {
			up = 1
		}
		fmt.Fprintf(w, "pll_backend_up{backend=%q} %d\n", b.host, up)
	}
	fmt.Fprintf(w, "# HELP pll_backend_mismatch Whether the backend's index identity disagrees with the pool majority.\n")
	fmt.Fprintf(w, "# TYPE pll_backend_mismatch gauge\n")
	for _, b := range c.backends {
		mm := 0
		if b.mismatch.Load() {
			mm = 1
		}
		fmt.Fprintf(w, "pll_backend_mismatch{backend=%q} %d\n", b.host, mm)
	}
	fmt.Fprintf(w, "# HELP pll_backend_breaker_open Whether the backend's circuit breaker is open.\n")
	fmt.Fprintf(w, "# TYPE pll_backend_breaker_open gauge\n")
	for _, b := range c.backends {
		open := 0
		if b.breaker.open() {
			open = 1
		}
		fmt.Fprintf(w, "pll_backend_breaker_open{backend=%q} %d\n", b.host, open)
	}
	fmt.Fprintf(w, "# HELP pll_backend_requests_total Proxied backend attempts by outcome (ok = answered below 500).\n")
	fmt.Fprintf(w, "# TYPE pll_backend_requests_total counter\n")
	for _, b := range c.backends {
		fmt.Fprintf(w, "pll_backend_requests_total{backend=%q,outcome=\"ok\"} %d\n", b.host, b.ok.Load())
		fmt.Fprintf(w, "pll_backend_requests_total{backend=%q,outcome=\"error\"} %d\n", b.host, b.errs.Load())
	}
	fmt.Fprintf(w, "# HELP pll_backend_request_duration_seconds Backend attempt latency as observed by the coordinator.\n")
	fmt.Fprintf(w, "# TYPE pll_backend_request_duration_seconds histogram\n")
	for _, b := range c.backends {
		b.hist.WriteSeries(w, "pll_backend_request_duration_seconds", fmt.Sprintf("backend=%q", b.host))
	}
	fmt.Fprintf(w, "# HELP pll_backend_hedges_total Hedge attempts sent to the backend.\n")
	fmt.Fprintf(w, "# TYPE pll_backend_hedges_total counter\n")
	for _, b := range c.backends {
		fmt.Fprintf(w, "pll_backend_hedges_total{backend=%q} %d\n", b.host, b.hedges.Load())
	}

	fmt.Fprintf(w, "# HELP pll_hedges_total Point lookups that fired a hedge request.\n")
	fmt.Fprintf(w, "# TYPE pll_hedges_total counter\n")
	fmt.Fprintf(w, "pll_hedges_total %d\n", c.hedges.Load())
	fmt.Fprintf(w, "# HELP pll_hedge_wins_total Hedged lookups answered by the hedge instead of the primary.\n")
	fmt.Fprintf(w, "# TYPE pll_hedge_wins_total counter\n")
	fmt.Fprintf(w, "pll_hedge_wins_total %d\n", c.hedgeWins.Load())
	fmt.Fprintf(w, "# HELP pll_scatter_total Fan-out requests served (merged from per-shard answers).\n")
	fmt.Fprintf(w, "# TYPE pll_scatter_total counter\n")
	fmt.Fprintf(w, "pll_scatter_total %d\n", c.scatters.Load())
	fmt.Fprintf(w, "# HELP pll_scatter_incomplete_total Fan-out requests served degraded (at least one shard missing).\n")
	fmt.Fprintf(w, "# TYPE pll_scatter_incomplete_total counter\n")
	fmt.Fprintf(w, "pll_scatter_incomplete_total %d\n", c.incomplete.Load())
	fmt.Fprintf(w, "# HELP pll_backends Configured backends.\n")
	fmt.Fprintf(w, "# TYPE pll_backends gauge\n")
	fmt.Fprintf(w, "pll_backends %d\n", len(c.backends))
	fmt.Fprintf(w, "# HELP pll_backends_usable Backends currently routable.\n")
	fmt.Fprintf(w, "# TYPE pll_backends_usable gauge\n")
	fmt.Fprintf(w, "pll_backends_usable %d\n", len(c.usable()))
	fmt.Fprintf(w, "# HELP pll_uptime_seconds Seconds since the coordinator was constructed.\n")
	fmt.Fprintf(w, "# TYPE pll_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pll_uptime_seconds %s\n", fmtFloat(time.Since(c.start).Seconds()))
}

// fmtFloat renders a float the way Prometheus clients expect.
func fmtFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
