package treedec

import (
	"errors"
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

func randomGraph(seed uint64, maxN int) *graph.Graph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := r.Intn(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func assertExact(t *testing.T, g *graph.Graph, ix *Index, pairs int, seed uint64) {
	t.Helper()
	n := int32(g.NumVertices())
	r := rng.New(seed)
	for i := 0; i < pairs; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		want := bfs.Distance(g, s, u)
		got := ix.Query(s, u)
		if want == bfs.Unreachable {
			if got != Unreachable {
				t.Fatalf("Query(%d,%d) = %d, want Unreachable", s, u, got)
			}
		} else if got != int64(want) {
			t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
		}
	}
}

func TestTreeFullyEliminated(t *testing.T) {
	// A tree has tree-width 1: everything eliminates, the core is empty.
	g := gen.RandomTree(200, 3)
	ix, err := Build(g, Options{MaxBag: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.ComputeStats()
	if st.CoreSize != 0 {
		t.Fatalf("tree left core of %d, want 0", st.CoreSize)
	}
	assertExact(t, g, ix, 300, 1)
}

func TestPathExact(t *testing.T) {
	g := gen.Path(150)
	ix, err := Build(g, Options{MaxBag: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 150; s += 13 {
		for u := int32(0); u < 150; u += 7 {
			want := s - u
			if want < 0 {
				want = -want
			}
			if got := ix.Query(s, u); got != int64(want) {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestGridExact(t *testing.T) {
	// Grids have tree-width min(rows, cols); MaxBag above that
	// eliminates a lot but leaves a core; below it leaves almost all as core.
	g := gen.Grid(6, 30)
	ix, err := Build(g, Options{MaxBag: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, g, ix, 400, 5)
}

func TestCoreFringeExact(t *testing.T) {
	g := gen.CoreFringe(60, 500, 400, 7)
	ix, err := Build(g, Options{MaxBag: 8, MaxCore: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.ComputeStats()
	if st.CoreSize == 0 {
		t.Fatal("dense core should survive elimination")
	}
	assertExact(t, g, ix, 400, 9)
}

func TestRandomGraphsExact(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 60)
		ix, err := Build(g, Options{MaxBag: 6, MaxCore: 100})
		if err != nil {
			return errors.Is(err, ErrCoreTooLarge) // allowed outcome
		}
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xaa)
		for i := 0; i < 30; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			got := ix.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int64(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnected(t *testing.T) {
	g, err := graph.NewGraph(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{MaxBag: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(0, 4); d != Unreachable {
		t.Fatalf("cross-component = %d", d)
	}
	if d := ix.Query(0, 2); d != 2 {
		t.Fatalf("within component = %d, want 2", d)
	}
	if d := ix.Query(5, 5); d != 0 {
		t.Fatalf("isolated self = %d, want 0", d)
	}
}

func TestCoreTooLargeSurfacesDNF(t *testing.T) {
	// A dense random graph has no low-degree fringe: the elimination
	// stalls immediately and the core exceeds any modest budget — the
	// DNF regime the paper reports for tree-decomposition methods on
	// complex networks.
	g := gen.ErdosRenyi(300, 8000, 3)
	_, err := Build(g, Options{MaxBag: 8, MaxCore: 50})
	if !errors.Is(err, ErrCoreTooLarge) {
		t.Fatalf("err = %v, want ErrCoreTooLarge", err)
	}
}

func TestCliqueCoreOnly(t *testing.T) {
	g := gen.Complete(20)
	ix, err := Build(g, Options{MaxBag: 5, MaxCore: 30})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.ComputeStats()
	if st.CoreSize != 20 {
		t.Fatalf("clique core = %d, want all 20", st.CoreSize)
	}
	assertExact(t, g, ix, 100, 2)
}

func TestStatsSane(t *testing.T) {
	g := gen.CoreFringe(40, 200, 200, 3)
	ix, err := Build(g, Options{MaxBag: 8, MaxCore: 60})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.ComputeStats()
	if st.NumBags < 2 || st.MaxBagSize < 1 || st.IndexBytes <= 0 {
		t.Fatalf("implausible stats %+v", st)
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := gen.RandomTree(50, 1)
	ix, err := Build(g, Options{}) // zero options must pick sane defaults
	if err != nil {
		t.Fatal(err)
	}
	assertExact(t, g, ix, 100, 4)
}

func BenchmarkTreedecConstruction(b *testing.B) {
	g := gen.CoreFringe(100, 800, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{MaxBag: 8, MaxCore: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreedecQuery(b *testing.B) {
	g := gen.CoreFringe(100, 800, 5000, 1)
	ix, err := Build(g, Options{MaxBag: 8, MaxCore: 200})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	n := int32(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(r.Int31n(n), r.Int31n(n))
	}
}
