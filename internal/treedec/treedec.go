// Package treedec is a clean-room stand-in for the tree-decomposition-
// based exact distance oracles the paper compares against (TEDI, Wei
// SIGMOD 2010; Akiba, Sommer, Kawarabayashi EDBT 2012).
//
// Construction eliminates low-degree vertices with a min-degree heuristic
// while the closed neighborhood fits a bag budget, adding weighted
// fill-in edges that preserve distances among the remaining vertices.
// Each eliminated vertex v yields a bag {v} ∪ N(v) whose exact distance
// matrix is filled top-down from its parent bag; the residual "core"
// becomes the root bag with an all-pairs matrix computed by Dijkstra.
// The bags form a valid rooted tree decomposition (every N(v) is a
// clique contained in the parent bag), so a query walks both endpoints'
// bags to their lowest common ancestor, propagating exact distance
// vectors, and combines them there.
//
// On the paper's complex networks the residual core is large, which is
// exactly why Table 3 reports DNF for these methods on big inputs —
// Build surfaces that behaviour as ErrCoreTooLarge instead of running
// for hours.
package treedec

import (
	"errors"
	"fmt"
	"math"

	"pll/internal/graph"
)

// Unreachable is returned by Query for disconnected pairs.
const Unreachable = -1

// inf is the internal "no path" weight.
const inf = uint64(math.MaxUint64) / 4

// ErrCoreTooLarge reports that the min-degree phase left a core whose
// all-pairs matrix would exceed Options.MaxCore — the DNF regime of the
// paper's tree-decomposition baselines.
var ErrCoreTooLarge = errors.New("treedec: residual core exceeds MaxCore (the method's DNF regime)")

// Options configures Build.
type Options struct {
	// MaxBag is the largest closed neighborhood eliminated into a bag
	// (the tree-width budget). Default 16.
	MaxBag int
	// MaxCore caps the residual core size for which the all-pairs root
	// matrix may be computed. Default 2048.
	MaxCore int
}

func (o *Options) setDefaults() {
	if o.MaxBag <= 0 {
		o.MaxBag = 16
	}
	if o.MaxCore <= 0 {
		o.MaxCore = 2048
	}
}

// bag is one node of the rooted tree decomposition. members[0] is the
// eliminated vertex for non-root bags. dist is the flattened symmetric
// |members|² matrix of exact distances in G.
type bag struct {
	members []int32
	dist    []uint64
	parent  int32 // bag index; -1 for the root
	depth   int32
}

func (b *bag) at(i, j int) uint64 { return b.dist[i*len(b.members)+j] }

// Index is the tree-decomposition distance oracle.
type Index struct {
	n     int
	bags  []bag
	bagOf []int32 // vertex -> bag index (root bag for core vertices)
	// memberIdx[v] = position of v inside bags[bagOf[v]].members
	memberIdx []int32
}

// Build constructs the oracle. It returns ErrCoreTooLarge when the graph
// has no small separator structure left after elimination.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	opt.setDefaults()
	n := g.NumVertices()

	// Working weighted adjacency with fill-in.
	adj := make([]map[int32]uint64, n)
	for v := int32(0); int(v) < n; v++ {
		m := make(map[int32]uint64, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			m[u] = 1
		}
		adj[v] = m
	}

	// Min-degree elimination with a lazy binary heap.
	eliminated := make([]bool, n)
	type elim struct {
		v         int32
		neighbors []int32
		weights   []uint64 // weight of (v, neighbors[i]) at elimination time
	}
	var elims []elim
	h := newDegreeHeap(n)
	for v := int32(0); int(v) < n; v++ {
		h.push(len(adj[v]), v)
	}
	for h.len() > 0 {
		deg, v := h.pop()
		if eliminated[v] || deg != len(adj[v]) {
			continue // stale entry
		}
		if deg >= opt.MaxBag {
			break // everything remaining has degree >= budget
		}
		nbrs := make([]int32, 0, deg)
		wts := make([]uint64, 0, deg)
		for u, w := range adj[v] {
			nbrs = append(nbrs, u)
			wts = append(wts, w)
		}
		// Deterministic order (maps iterate randomly).
		sortByVertex(nbrs, wts)
		// Fill-in: connect all neighbor pairs with min weights.
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				w := wts[i] + wts[j]
				if old, ok := adj[a][b]; !ok || w < old {
					adj[a][b] = w
					adj[b][a] = w
				}
			}
		}
		for _, u := range nbrs {
			delete(adj[u], v)
			h.push(len(adj[u]), u)
		}
		adj[v] = nil
		eliminated[v] = true
		elims = append(elims, elim{v: v, neighbors: nbrs, weights: wts})
	}

	// Residual core.
	var core []int32
	for v := int32(0); int(v) < n; v++ {
		if !eliminated[v] {
			core = append(core, v)
		}
	}
	if len(core) > opt.MaxCore {
		return nil, fmt.Errorf("%w: core %d > MaxCore %d", ErrCoreTooLarge, len(core), opt.MaxCore)
	}

	ix := &Index{
		n:         n,
		bagOf:     make([]int32, n),
		memberIdx: make([]int32, n),
	}
	for i := range ix.bagOf {
		ix.bagOf[i] = -1
	}

	// Root bag: the core with its exact all-pairs matrix (distances in
	// the fill-in graph among remaining vertices equal distances in G).
	coreIdx := make(map[int32]int32, len(core))
	for i, v := range core {
		coreIdx[v] = int32(i)
	}
	root := bag{members: core, parent: -1, depth: 0}
	root.dist = coreAllPairs(core, coreIdx, adj)
	ix.bags = append(ix.bags, root)
	for i, v := range core {
		ix.bagOf[v] = 0
		ix.memberIdx[v] = int32(i)
	}

	// Non-root bags in reverse elimination order, so each parent (the
	// first-eliminated neighbor, or the root) exists before its children.
	elimIdx := make([]int32, n) // elimination position, for parent choice
	for i := range elimIdx {
		elimIdx[i] = -1
	}
	for i, e := range elims {
		elimIdx[e.v] = int32(i)
	}
	for i := len(elims) - 1; i >= 0; i-- {
		e := elims[i]
		members := make([]int32, 0, len(e.neighbors)+1)
		members = append(members, e.v)
		members = append(members, e.neighbors...)

		// Parent: the member of N(v) eliminated first after v; if none
		// of N(v) was eliminated, the root.
		parent := int32(0)
		best := int32(math.MaxInt32)
		for _, u := range e.neighbors {
			if ei := elimIdx[u]; ei >= 0 && ei < best {
				best = ei
				parent = ix.bagOf[u]
			}
		}
		pb := &ix.bags[parent]

		k := len(members)
		b := bag{
			members: members,
			dist:    make([]uint64, k*k),
			parent:  parent,
			depth:   pb.depth + 1,
		}
		// Positions of the neighbors inside the parent bag (guaranteed
		// to exist: N(v) is a clique, so all of it survives to the
		// parent's bag).
		pPos := make([]int, len(e.neighbors))
		for i2, u := range e.neighbors {
			pPos[i2] = memberPos(pb, u)
			if pPos[i2] < 0 {
				return nil, fmt.Errorf("treedec: internal error: %d not in parent bag of %d", u, e.v)
			}
		}
		// Pairwise distances among N(v): copy from the parent matrix.
		for a := 0; a < len(e.neighbors); a++ {
			for bIdx := 0; bIdx < len(e.neighbors); bIdx++ {
				b.dist[(a+1)*k+(bIdx+1)] = pb.at(pPos[a], pPos[bIdx])
			}
		}
		// Distances from v: shortest first hop into N(v) plus exact rest.
		for a := 0; a < len(e.neighbors); a++ {
			dv := inf
			for w := 0; w < len(e.neighbors); w++ {
				if d := e.weights[w] + b.dist[(w+1)*k+(a+1)]; d < dv {
					dv = d
				}
			}
			b.dist[0*k+(a+1)] = dv
			b.dist[(a+1)*k+0] = dv
		}
		b.dist[0] = 0
		bi := int32(len(ix.bags))
		ix.bags = append(ix.bags, b)
		ix.bagOf[e.v] = bi
		ix.memberIdx[e.v] = 0
	}
	return ix, nil
}

// coreAllPairs runs Dijkstra from every core vertex over the residual
// weighted adjacency.
func coreAllPairs(core []int32, coreIdx map[int32]int32, adj []map[int32]uint64) []uint64 {
	k := len(core)
	dist := make([]uint64, k*k)
	if k == 0 {
		return dist
	}
	d := make([]uint64, k)
	var h pairHeap
	for si := range core {
		for i := range d {
			d[i] = inf
		}
		d[si] = 0
		h = h[:0]
		h.push(hp{0, int32(si)})
		for len(h) > 0 {
			it := h.pop()
			if it.d != d[it.v] {
				continue
			}
			for u, w := range adj[core[it.v]] {
				ui := coreIdx[u]
				if nd := it.d + w; nd < d[ui] {
					d[ui] = nd
					h.push(hp{nd, ui})
				}
			}
		}
		copy(dist[si*k:(si+1)*k], d)
	}
	return dist
}

// Query returns the exact s-t distance or Unreachable.
func (ix *Index) Query(s, t int32) int64 {
	if s == t {
		return 0
	}
	// Distance vectors from each endpoint to the members of its current
	// bag, propagated upward to the LCA bag.
	bs, bt := ix.bagOf[s], ix.bagOf[t]
	ds := ix.initVec(s)
	dt := ix.initVec(t)
	// Climb the deeper side until both are at the same bag.
	for bs != bt {
		if ix.bags[bs].depth >= ix.bags[bt].depth {
			ds = ix.lift(bs, ds)
			bs = ix.bags[bs].parent
		} else {
			dt = ix.lift(bt, dt)
			bt = ix.bags[bt].parent
		}
	}
	best := inf
	for i := range ix.bags[bs].members {
		if d := ds[i] + dt[i]; d < best {
			best = d
		}
	}
	if best >= inf {
		return Unreachable
	}
	return int64(best)
}

// initVec returns the exact distances from v to the members of its bag.
func (ix *Index) initVec(v int32) []uint64 {
	b := &ix.bags[ix.bagOf[v]]
	pos := int(ix.memberIdx[v])
	k := len(b.members)
	vec := make([]uint64, k)
	copy(vec, b.dist[pos*k:(pos+1)*k])
	return vec
}

// lift converts a distance vector over bag bi's members into one over
// its parent's members. The separator between the endpoint and the rest
// of the graph is N(v) = members[1:], all contained in the parent bag.
func (ix *Index) lift(bi int32, vec []uint64) []uint64 {
	b := &ix.bags[bi]
	pb := &ix.bags[b.parent]
	out := make([]uint64, len(pb.members))
	for i := range out {
		out[i] = inf
	}
	for mi := 1; mi < len(b.members); mi++ { // skip the eliminated vertex itself
		u := b.members[mi]
		pPos := memberPos(pb, u)
		base := vec[mi]
		if base >= inf {
			continue
		}
		row := pb.dist[pPos*len(pb.members) : (pPos+1)*len(pb.members)]
		for j, d := range row {
			if nd := base + d; nd < out[j] {
				out[j] = nd
			}
		}
	}
	return out
}

// memberPos finds v's position in b.members (bags are small; linear scan).
func memberPos(b *bag, v int32) int {
	for i, m := range b.members {
		if m == v {
			return i
		}
	}
	return -1
}

// Stats describes the decomposition for experiment reports.
type Stats struct {
	NumBags    int
	CoreSize   int
	MaxBagSize int
	IndexBytes int64
}

// ComputeStats summarizes the decomposition.
func (ix *Index) ComputeStats() Stats {
	st := Stats{NumBags: len(ix.bags)}
	if len(ix.bags) > 0 {
		st.CoreSize = len(ix.bags[0].members)
	}
	for _, b := range ix.bags {
		if len(b.members) > st.MaxBagSize {
			st.MaxBagSize = len(b.members)
		}
		st.IndexBytes += int64(len(b.members))*4 + int64(len(b.dist))*8
	}
	return st
}

// sortByVertex sorts the parallel (nbrs, wts) slices by vertex ID.
func sortByVertex(nbrs []int32, wts []uint64) {
	for i := 1; i < len(nbrs); i++ {
		v, w := nbrs[i], wts[i]
		j := i - 1
		for j >= 0 && nbrs[j] > v {
			nbrs[j+1], wts[j+1] = nbrs[j], wts[j]
			j--
		}
		nbrs[j+1], wts[j+1] = v, w
	}
}

// degreeHeap is a lazy binary min-heap of (degree, vertex).
type degreeHeap struct{ items []hp }

type hp struct {
	d uint64
	v int32
}

func newDegreeHeap(capHint int) *degreeHeap {
	return &degreeHeap{items: make([]hp, 0, capHint)}
}

func (h *degreeHeap) len() int { return len(h.items) }

func (h *degreeHeap) push(deg int, v int32) {
	ph := pairHeap(h.items)
	ph.push(hp{uint64(deg), v})
	h.items = ph
}

func (h *degreeHeap) pop() (int, int32) {
	ph := pairHeap(h.items)
	it := ph.pop()
	h.items = ph
	return int(it.d), it.v
}

// pairHeap is a minimal binary min-heap over hp keyed by d.
type pairHeap []hp

func (h *pairHeap) push(it hp) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *pairHeap) pop() hp {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].d < (*h)[small].d {
			small = l
		}
		if r < last && (*h)[r].d < (*h)[small].d {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
