package order

import (
	"sort"

	"pll/internal/graph"
	"pll/internal/rng"
)

// Betweenness orders vertices by decreasing sampled betweenness
// centrality. §4.4.1 motivates ordering by "vertices who many shortest
// paths pass through"; Degree and Closeness are the paper's cheap
// proxies, and this strategy computes the quantity directly (Brandes'
// dependency accumulation from a vertex sample). It is an ablation
// beyond the paper's three strategies: slower to compute, occasionally
// slightly smaller labels.
const Betweenness Strategy = 3

// BetweennessSamples is the number of sampled sources for ByBetweenness.
const BetweennessSamples = 32

// ByBetweenness orders vertices by decreasing approximate betweenness,
// accumulated from `samples` BFS sources via Brandes' backward pass.
func ByBetweenness(g *graph.Graph, samples int, seed uint64) []int32 {
	n := g.NumVertices()
	if samples > n {
		samples = n
	}
	r := rng.New(seed)
	score := make([]float64, n)

	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulator
	dist := make([]int32, n)    // BFS distances
	orderBuf := make([]int32, 0, n)

	sources := r.Perm(n)[:samples]
	for _, s := range sources {
		for i := 0; i < n; i++ {
			sigma[i], delta[i], dist[i] = 0, 0, -1
		}
		orderBuf = orderBuf[:0]
		sigma[s] = 1
		dist[s] = 0
		orderBuf = append(orderBuf, s)
		for head := 0; head < len(orderBuf); head++ {
			v := orderBuf[head]
			for _, u := range g.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					orderBuf = append(orderBuf, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		// Backward pass in reverse BFS order.
		for i := len(orderBuf) - 1; i >= 0; i-- {
			v := orderBuf[i]
			for _, u := range g.Neighbors(v) {
				if dist[u] == dist[v]+1 && sigma[u] > 0 {
					delta[v] += sigma[v] / sigma[u] * (1 + delta[u])
				}
			}
			if v != s {
				score[v] += delta[v]
			}
		}
	}
	perm := rng.New(seed ^ 0xbe7cee).Perm(n)
	sort.SliceStable(perm, func(i, j int) bool {
		return score[perm[i]] > score[perm[j]]
	})
	return perm
}
