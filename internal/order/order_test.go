package order

import (
	"testing"

	"pll/internal/gen"
	"pll/internal/graph"
)

func isPermutation(p []int32, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestAllStrategiesReturnPermutations(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	for _, s := range []Strategy{Degree, Random, Closeness} {
		perm := Compute(g, s, 7)
		if !isPermutation(perm, 200) {
			t.Fatalf("%v did not return a permutation", s)
		}
	}
}

func TestDegreeOrderIsNonIncreasing(t *testing.T) {
	g := gen.BarabasiAlbert(300, 2, 5)
	perm := ByDegree(g, 1)
	for i := 1; i < len(perm); i++ {
		if g.Degree(perm[i-1]) < g.Degree(perm[i]) {
			t.Fatalf("degree order violated at rank %d: %d < %d",
				i, g.Degree(perm[i-1]), g.Degree(perm[i]))
		}
	}
}

func TestDegreePutsHubFirstOnStar(t *testing.T) {
	g := gen.Star(50)
	perm := ByDegree(g, 3)
	if perm[0] != 0 {
		t.Fatalf("star center should rank first, got vertex %d", perm[0])
	}
}

func TestClosenessPutsCenterFirstOnPath(t *testing.T) {
	g := gen.Path(51)
	perm := ByCloseness(g, 51, 2) // exact closeness: all vertices sampled
	// The middle of the path minimizes total distance.
	if perm[0] != 25 {
		t.Fatalf("path center should rank first, got %d", perm[0])
	}
}

func TestClosenessSinksDisconnectedFringe(t *testing.T) {
	// Component A: clique of 10; component B: single edge.
	edges := []graph.Edge{}
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	edges = append(edges, graph.Edge{U: 10, V: 11})
	g, err := graph.NewGraph(12, edges)
	if err != nil {
		t.Fatal(err)
	}
	perm := ByCloseness(g, 12, 4)
	// The two isolated-pair vertices should be ranked last.
	last2 := map[int32]bool{perm[10]: true, perm[11]: true}
	if !last2[10] || !last2[11] {
		t.Fatalf("fringe vertices should rank last, got tail %v", perm[10:])
	}
}

func TestRandomOrderDeterministicPerSeed(t *testing.T) {
	g := gen.ErdosRenyi(100, 200, 9)
	a := Compute(g, Random, 42)
	b := Compute(g, Random, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same random order")
		}
	}
	c := Compute(g, Random, 43)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should give different orders")
	}
}

func TestRankOf(t *testing.T) {
	perm := []int32{2, 0, 1}
	rank := RankOf(perm)
	if rank[2] != 0 || rank[0] != 1 || rank[1] != 2 {
		t.Fatalf("RankOf = %v", rank)
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"Degree": Degree, "degree": Degree,
		"Random": Random, "random": Random,
		"Closeness": Closeness, "closeness": Closeness,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestStrategyString(t *testing.T) {
	if Degree.String() != "Degree" || Random.String() != "Random" || Closeness.String() != "Closeness" {
		t.Fatal("String() names wrong")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still stringify")
	}
}

func TestClosenessSampleClamp(t *testing.T) {
	g := gen.Path(5)
	perm := ByCloseness(g, 100, 1) // samples > n must not panic
	if !isPermutation(perm, 5) {
		t.Fatal("not a permutation")
	}
}
