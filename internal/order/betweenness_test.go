package order

import (
	"testing"

	"pll/internal/gen"
	"pll/internal/graph"
)

func TestBetweennessIsPermutation(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	perm := ByBetweenness(g, 16, 7)
	if !isPermutation(perm, 200) {
		t.Fatal("not a permutation")
	}
}

func TestBetweennessPutsBridgeFirst(t *testing.T) {
	// Two cliques joined by a single bridge vertex: every cross pair's
	// shortest path passes the bridge, so it must rank first.
	var edges []graph.Edge
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := int32(7); i < 13; i++ {
		for j := i + 1; j < 13; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	bridge := int32(6)
	edges = append(edges, graph.Edge{U: 0, V: bridge}, graph.Edge{U: bridge, V: 7})
	g, err := graph.NewGraph(13, edges)
	if err != nil {
		t.Fatal(err)
	}
	perm := ByBetweenness(g, 13, 3) // all sources: exact betweenness
	if perm[0] != bridge {
		t.Fatalf("bridge should rank first, got %d (perm %v)", perm[0], perm)
	}
}

func TestBetweennessPathCenter(t *testing.T) {
	g := gen.Path(21)
	perm := ByBetweenness(g, 21, 5)
	if perm[0] != 10 {
		t.Fatalf("path center should rank first, got %d", perm[0])
	}
}

func TestBetweennessViaCompute(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 2)
	perm := Compute(g, Betweenness, 9)
	if !isPermutation(perm, 100) {
		t.Fatal("Compute(Betweenness) broken")
	}
}

func TestBetweennessParseAndString(t *testing.T) {
	s, err := ParseStrategy("Betweenness")
	if err != nil || s != Betweenness {
		t.Fatalf("parse: %v %v", s, err)
	}
	if Betweenness.String() != "Betweenness" {
		t.Fatal("String wrong")
	}
}

func TestBetweennessSampleClamp(t *testing.T) {
	g := gen.Path(5)
	perm := ByBetweenness(g, 100, 1)
	if !isPermutation(perm, 5) {
		t.Fatal("clamped sampling broken")
	}
}

func TestBetweennessOrderingProducesExactIndex(t *testing.T) {
	// The ordering is a quality knob, never a correctness knob.
	g := gen.BarabasiAlbert(150, 3, 4)
	perm := ByBetweenness(g, 16, 2)
	if !isPermutation(perm, 150) {
		t.Fatal("not a permutation")
	}
}
