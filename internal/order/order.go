// Package order implements the vertex-ordering strategies of §4.4 of the
// paper. The order in which pruned BFSs are performed is the single most
// important tuning knob of pruned landmark labeling (Table 5): central
// vertices must come first so that later searches are pruned early.
//
// An ordering is returned as a permutation perm with perm[rank] = vertex:
// perm[0] is the first (most central) BFS root.
package order

import (
	"fmt"
	"sort"

	"pll/internal/bfs"
	"pll/internal/graph"
	"pll/internal/rng"
)

// Strategy selects how vertices are prioritized.
type Strategy int

const (
	// Degree orders vertices by decreasing degree (the paper's default;
	// ties are broken by a seeded random shuffle so that distinct seeds
	// give distinct, reproducible orders).
	Degree Strategy = iota
	// Random orders vertices uniformly at random (the paper's baseline
	// demonstrating that ordering matters).
	Random
	// Closeness orders vertices by increasing total distance to a random
	// sample of vertices — the sampled approximation of closeness
	// centrality described in §4.4.2.
	Closeness
)

// String returns the strategy name as used in the paper's Table 5.
func (s Strategy) String() string {
	switch s {
	case Degree:
		return "Degree"
	case Random:
		return "Random"
	case Closeness:
		return "Closeness"
	case Betweenness:
		return "Betweenness"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a case-sensitive strategy name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "Degree", "degree":
		return Degree, nil
	case "Random", "random":
		return Random, nil
	case "Closeness", "closeness":
		return Closeness, nil
	case "Betweenness", "betweenness":
		return Betweenness, nil
	}
	return 0, fmt.Errorf("order: unknown strategy %q (want Degree, Random, Closeness or Betweenness)", name)
}

// ClosenessSamples is the number of sampled BFS sources used by the
// Closeness strategy (the paper approximates closeness by sampling).
const ClosenessSamples = 32

// Compute returns the ordering permutation for g under the strategy.
func Compute(g *graph.Graph, s Strategy, seed uint64) []int32 {
	switch s {
	case Degree:
		return ByDegree(g, seed)
	case Random:
		return rng.New(seed).Perm(g.NumVertices())
	case Closeness:
		return ByCloseness(g, ClosenessSamples, seed)
	case Betweenness:
		return ByBetweenness(g, BetweennessSamples, seed)
	default:
		panic(fmt.Sprintf("order: unknown strategy %d", int(s)))
	}
}

// ByDegree orders vertices by decreasing degree with seeded random
// tie-breaking.
func ByDegree(g *graph.Graph, seed uint64) []int32 {
	n := g.NumVertices()
	perm := rng.New(seed).Perm(n) // random tie-break baseline
	sort.SliceStable(perm, func(i, j int) bool {
		return g.Degree(perm[i]) > g.Degree(perm[j])
	})
	return perm
}

// ByCloseness orders vertices by increasing sum of distances to a random
// sample of source vertices (smaller total distance = more central =
// earlier). Unreachable pairs contribute n, so fringe components sink to
// the end. samples is clamped to n.
func ByCloseness(g *graph.Graph, samples int, seed uint64) []int32 {
	n := g.NumVertices()
	if samples > n {
		samples = n
	}
	r := rng.New(seed)
	total := make([]int64, n)
	sources := r.Perm(n)[:samples]
	for _, s := range sources {
		for v, d := range bfs.AllDistances(g, s) {
			if d == bfs.Unreachable {
				total[v] += int64(n)
			} else {
				total[v] += int64(d)
			}
		}
	}
	perm := rng.New(seed ^ 0x9e3779b97f4a7c15).Perm(n) // random tie-break
	sort.SliceStable(perm, func(i, j int) bool {
		return total[perm[i]] < total[perm[j]]
	})
	return perm
}

// RankOf inverts a permutation: rankOf[vertex] = rank.
func RankOf(perm []int32) []int32 {
	rank := make([]int32, len(perm))
	for r, v := range perm {
		rank[v] = int32(r)
	}
	return rank
}
