package main

import "testing"

func TestBuildGraphDataset(t *testing.T) {
	g, err := buildGraph("Gnutella", 512, "", 0, 0, 0, 0, 0, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty dataset graph")
	}
}

func TestBuildGraphModels(t *testing.T) {
	cases := []struct {
		model string
		n     int
	}{
		{"ba", 100},
		{"er", 100},
		{"ws", 100},
		{"rmat", 128},
		{"tree", 100},
		{"corefringe", 50},
	}
	for _, c := range cases {
		g, err := buildGraph("", 64, c.model, c.n, 4, 200, 4, 0.1, 10, 10, 100, 3)
		if err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", c.model)
		}
	}
}

func TestBuildGraphGrid(t *testing.T) {
	g, err := buildGraph("", 64, "grid", 0, 0, 0, 0, 0, 5, 7, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 35 {
		t.Fatalf("grid n = %d, want 35", g.NumVertices())
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := buildGraph("", 64, "", 10, 2, 10, 2, 0, 2, 2, 2, 1); err == nil {
		t.Fatal("expected error with no dataset or model")
	}
	if _, err := buildGraph("", 64, "nope", 10, 2, 10, 2, 0, 2, 2, 2, 1); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := buildGraph("NoSuchDataset", 64, "", 0, 0, 0, 0, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
