// Command gengraph generates synthetic network files: either one of the
// paper's dataset stand-ins (see internal/datasets) or a raw generator.
//
// Usage:
//
//	gengraph -dataset Epinions -scalediv 64 -seed 7 -out epinions.txt
//	gengraph -model ba -n 10000 -m 5 -seed 1 -out social.txt
//	gengraph -model rmat -n 16384 -deg 8 -out web.txt
//	gengraph -model er -n 10000 -edges 50000 -out random.txt
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pll/internal/datasets"
	"pll/internal/gen"
	"pll/internal/graph"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "paper dataset stand-in to generate (see -list)")
		scaleDiv = flag.Int64("scalediv", 64, "divide the paper's |V| by this factor")
		model    = flag.String("model", "", "raw generator: ba, er, ws, rmat, tree, grid, corefringe")
		n        = flag.Int("n", 10000, "number of vertices (raw generators)")
		m        = flag.Int("m", 3, "attachment edges per vertex (ba) / k (ws)")
		edges    = flag.Int64("edges", 30000, "edge count (er, corefringe core)")
		deg      = flag.Int("deg", 8, "average degree (rmat)")
		beta     = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		rows     = flag.Int("rows", 100, "grid rows")
		cols     = flag.Int("cols", 100, "grid cols")
		fringe   = flag.Int("fringe", 10000, "fringe vertices (corefringe)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output edge-list path (default stdout)")
		list     = flag.Bool("list", false, "list dataset stand-ins and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Dataset stand-ins (paper Table 4):")
		for _, r := range datasets.All() {
			fmt.Printf("  %-11s %-9s |V|=%-9d |E|=%-11d t=%d\n", r.Name, r.Kind, r.PaperV, r.PaperE, r.BitParallel)
		}
		return
	}

	g, err := buildGraph(*dataset, *scaleDiv, *model, *n, *m, *edges, *deg, *beta, *rows, *cols, *fringe, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	if *out == "" {
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		return
	}
	if err := graph.SaveGraphFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
}

func buildGraph(dataset string, scaleDiv int64, model string, n, m int, edges int64, deg int, beta float64, rows, cols, fringe int, seed uint64) (*graph.Graph, error) {
	if dataset != "" {
		rec, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return rec.Generate(scaleDiv, seed), nil
	}
	switch model {
	case "ba":
		return gen.BarabasiAlbert(n, m, seed), nil
	case "er":
		return gen.ErdosRenyi(n, edges, seed), nil
	case "ws":
		return gen.WattsStrogatz(n, m, beta, seed), nil
	case "rmat":
		scale := 1
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, deg, 0.57, 0.19, 0.19, seed), nil
	case "tree":
		return gen.RandomTree(n, seed), nil
	case "grid":
		return gen.Grid(rows, cols), nil
	case "corefringe":
		return gen.CoreFringe(n, edges, fringe, seed), nil
	case "":
		return nil, fmt.Errorf("need -dataset or -model (try -list)")
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
