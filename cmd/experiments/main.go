// Command experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments table1 [-scalediv 64] [-pairs 20000]
//	experiments table3 [-scalediv 64] [-all]      # -all includes the six large datasets
//	experiments table5 [-scalediv 64]
//	experiments fig1
//	experiments fig2 [-scalediv 64] [-all]
//	experiments fig3 [-scalediv 256]
//	experiments fig4 [-scalediv 64]
//	experiments fig5 [-scalediv 256]
//	experiments all  [-scalediv 128]              # everything, scaled for a laptop
//
// ScaleDiv divides the paper's |V| for every dataset; -scalediv 1
// reproduces the paper's sizes (hours of CPU and tens of GB of memory).
// Outputs are text rows/series matching the paper's tables and plots;
// EXPERIMENTS.md records a reference run with commentary.
package main

import (
	"flag"
	"fmt"
	"os"

	"pll/internal/datasets"
	"pll/internal/exp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scaleDiv := fs.Int64("scalediv", 0, "divide the paper's |V| by this factor (0 = per-command default)")
	pairs := fs.Int("pairs", 0, "random query pairs per measurement (0 = default)")
	seed := fs.Uint64("seed", 7, "experiment seed")
	all := fs.Bool("all", false, "include the six large datasets (slow)")
	workers := fs.Int("workers", 0, "construction workers for the PLL builds (0 = all cores, 1 = sequential)")
	fs.Parse(os.Args[2:])

	cfg := exp.Config{ScaleDiv: *scaleDiv, QueryPairs: *pairs, Seed: *seed, Workers: *workers}
	var err error
	switch cmd {
	case "table1":
		err = runTable1(cfg, *all)
	case "table3":
		err = runTable3(cfg, *all)
	case "table5":
		err = runTable5(cfg)
	case "fig1":
		err = runFig1()
	case "fig2":
		err = runFig2(cfg, *all)
	case "fig3":
		err = runFig3(cfg)
	case "fig4":
		err = runFig4(cfg)
	case "fig5":
		err = runFig5(cfg)
	case "approx":
		err = runApprox(cfg)
	case "all":
		err = runAll(cfg)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments {table1|table3|table5|fig1|fig2|fig3|fig4|fig5|approx|all} [-scalediv N] [-pairs N] [-seed N] [-workers N] [-all]")
}

// printBuildSetup names the construction parallelism next to any output
// that contains indexing wall-times, so recorded numbers are
// reproducible (build times depend on the worker count; labels do not).
func printBuildSetup(cfg exp.Config) {
	fmt.Printf("# PLL construction: %d workers (indexing wall-times below were measured with this setting)\n",
		cfg.BuildWorkers())
}

func recipes(all bool) []datasets.Recipe {
	if all {
		return datasets.All()
	}
	return datasets.Small()
}

func runTable1(cfg exp.Config, all bool) error {
	rows, err := exp.Table3(cfg, recipes(all))
	if err != nil {
		return err
	}
	fmt.Println("# Table 1: summary of exact methods (measured on synthetic stand-ins)")
	printBuildSetup(cfg)
	exp.PrintTable1(os.Stdout, exp.Table1(rows))
	fmt.Println("\n# Published numbers for the original systems appear in the paper's Table 1;")
	fmt.Println("# the rows above are this repository's reimplementations (see DESIGN.md §3).")
	return nil
}

func runTable3(cfg exp.Config, all bool) error {
	rows, err := exp.Table3(cfg, recipes(all))
	if err != nil {
		return err
	}
	fmt.Println("# Table 3: PLL vs HHL vs tree decomposition vs online BFS")
	printBuildSetup(cfg)
	exp.PrintTable3(os.Stdout, rows)
	return nil
}

func runTable5(cfg exp.Config) error {
	// The paper's Table 5 reports DNF for Random on its two larger small
	// datasets (NotreDame, WikiTalk); the guard reproduces that: Random
	// labels explode (paper: 50x Degree), so stand-ins above this vertex
	// budget report DNF rather than dominating the suite's runtime.
	rows, err := exp.Table5(cfg, datasets.Small(), 2000)
	if err != nil {
		return err
	}
	fmt.Println("# Table 5: average label size per vertex-ordering strategy (no bit-parallel)")
	printBuildSetup(cfg)
	exp.PrintTable5(os.Stdout, rows)
	return nil
}

func runFig1() error {
	steps, err := exp.Fig1()
	if err != nil {
		return err
	}
	fmt.Println("# Figure 1: pruned BFS walkthrough on the 12-vertex example graph")
	exp.PrintFig1(os.Stdout, steps)
	return nil
}

func runFig2(cfg exp.Config, all bool) error {
	exp.PrintFig2(os.Stdout, exp.Fig2(cfg, recipes(all)))
	return nil
}

func runFig3(cfg exp.Config) error {
	if cfg.ScaleDiv == 0 {
		cfg.ScaleDiv = 256 // Fig 3 uses the larger Skitter/Indo/Flickr
	}
	series, err := exp.Fig3(cfg, datasets.Fig3Sets())
	if err != nil {
		return err
	}
	exp.PrintFig3(os.Stdout, series)
	return nil
}

func runFig4(cfg exp.Config) error {
	exp.PrintFig4(os.Stdout, exp.Fig4(cfg, datasets.Fig4Sets(), 1024))
	return nil
}

func runFig5(cfg exp.Config) error {
	if cfg.ScaleDiv == 0 {
		cfg.ScaleDiv = 256
	}
	series, err := exp.Fig5(cfg, datasets.Fig3Sets(), nil)
	if err != nil {
		return err
	}
	exp.PrintFig5(os.Stdout, series)
	return nil
}

func runApprox(cfg exp.Config) error {
	exp.PrintApproxError(os.Stdout, exp.ApproxError(cfg, datasets.Fig4Sets(), 64))
	return nil
}

func runAll(cfg exp.Config) error {
	if cfg.ScaleDiv == 0 {
		cfg.ScaleDiv = 128
	}
	steps := []struct {
		name string
		f    func() error
	}{
		{"fig1", runFig1},
		{"fig2", func() error { return runFig2(cfg, false) }},
		{"table3", func() error { return runTable3(cfg, false) }},
		{"table1", func() error { return runTable1(cfg, false) }},
		{"table5", func() error { return runTable5(cfg) }},
		{"fig3", func() error { return runFig3(cfg) }},
		{"fig4", func() error { return runFig4(cfg) }},
		{"fig5", func() error { return runFig5(cfg) }},
		{"approx", func() error { return runApprox(cfg) }},
	}
	for _, s := range steps {
		fmt.Printf("\n===== %s =====\n", s.name)
		if err := s.f(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
