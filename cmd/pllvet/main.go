// Command pllvet runs the project's static-analysis suite
// (internal/lint) over Go packages, in the manner of go vet: findings
// go to stderr as file:line:col: message, and any finding (or any
// malformed //pllvet:ignore directive) exits nonzero so CI can gate on
// a clean run.
//
// Usage:
//
//	go run ./cmd/pllvet [flags] [packages]
//
//	-run list     comma-separated analyzer names (default: all)
//	-fix          apply the first suggested fix of each finding,
//	              gofmt the touched files in place
//	-list         print the analyzers and exit
//
// Packages default to ./... resolved from the current directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pll/internal/lint"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		fix  = flag.Bool("fix", false, "apply suggested fixes in place")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()
	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fatal(err)
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	if len(diags) == 0 {
		return
	}
	var fset = pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if *fix {
		files, err := lint.ApplyFixes(fset, diags)
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, files[name], 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "fixed %s\n", name)
		}
	}
	os.Exit(1)
}

func selectAnalyzers(run string) ([]*lint.Analyzer, error) {
	if run == "" {
		return lint.All, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(run, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pllvet:", err)
	os.Exit(2)
}
