// Command pllrouted is the scatter-gather coordinator for a pool of
// pllserved replicas serving one index. It exposes the same HTTP/JSON
// surface as a single replica — answers are byte-identical when the
// pool is whole — while spreading load across the pool:
//
//	GET  /distance, /path         routed to one replica by rendezvous
//	                              hashing (failover + hedged retries)
//	POST /batch                   chunk-split across replicas and
//	                              reassembled in order
//	GET  /knn, /range             scattered to every shard, top-k merged
//	POST /nearest, /query         scattered to every shard, top-k merged
//	GET  /healthz                 pool health + pooled index identity
//	GET  /stats                   routing counters, per-backend state
//	GET  /metrics                 Prometheus text format: the standard
//	                              per-endpoint families plus per-backend
//	                              latency/error/hedge/breaker series
//	GET  /debug/traces            recent sampled trace span trees with one
//	                              child span per backend attempt (scatter
//	                              legs, hedges, failover hops)
//
// Usage:
//
//	pllrouted -backends http://h1:8355,http://h2:8355,http://h3:8355 [-addr :8360]
//
// Replicas must serve the same index: every health sweep compares the
// identity each replica reports on /healthz (variant, vertex count,
// content checksum) and stops routing to replicas that disagree with
// the pool majority. When shards are missing, fan-out answers degrade
// explicitly — "incomplete": true — instead of failing, while point
// lookups fail over and /healthz reports "degraded" with a 200 so the
// coordinator itself is not restarted for a backend's outage.
//
// -maxbatch and -maxbody must match the replicas' settings; the
// coordinator enforces them before scattering so an oversized fan-out
// is shed locally instead of amplified across the pool. -rate, -burst,
// -maxinflight and -logevery mount the same admission-control and
// logging middleware pllserved uses, and -trace-sample/-trace-ring/
// -slow-query the same tracing: every backend attempt becomes a child
// span and carries a traceparent header, so a replica's own trace joins
// the coordinator's tree. SIGINT/SIGTERM drain in-flight scatters
// before the backend connection pools are torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pll/internal/cluster"
	"pll/internal/server"
	"pll/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pllrouted:", err)
		os.Exit(1)
	}
}

func run() error {
	backends := flag.String("backends", "", "comma-separated replica base URLs (http://host:port), required")
	addr := flag.String("addr", ":8360", "listen address")
	maxBatch := flag.Int("maxbatch", 0, "max request fan-out, must match the replicas' -maxbatch (0 means the default, 4096)")
	maxBody := flag.Int64("maxbody", 0, "max POST body bytes (0 means the default, 1 MiB)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in req/s, keyed by X-Client-Id or remote IP (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst: requests a client may spend at once (0 means 2x -rate, min 1)")
	maxInflight := flag.Int("maxinflight", 0, "global concurrent-request cap; excess requests are shed with 429 + Retry-After (0 disables)")
	logEvery := flag.Int("logevery", 0, "structured request logging: log every Nth request (0 disables)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests to trace head-sampled in [0,1]; errors and slow queries are always traced")
	traceRing := flag.Int("trace-ring", 0, "recent-trace ring capacity served by /debug/traces (0 means the default, 256)")
	slowQuery := flag.Duration("slow-query", 0, "latency threshold above which a request is traced and logged with its per-backend profile (0 disables)")
	timeout := flag.Duration("timeout", 0, "per-backend attempt timeout (0 means the default, 5s)")
	hedge := flag.Duration("hedge", 0, "fixed delay before hedging a point lookup to a second replica (0 = adaptive: the primary's observed p99)")
	healthEvery := flag.Duration("health", 0, "delay between backend health sweeps (0 means the default, 1s)")
	maxConns := flag.Int("maxconns", 0, "connection-pool cap per backend (0 means the default, 128)")
	flag.Parse()

	if *backends == "" {
		return errors.New("-backends is required")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	coord, err := cluster.New(cluster.Config{
		Backends:           urls,
		MaxBatch:           *maxBatch,
		MaxBody:            *maxBody,
		HealthInterval:     *healthEvery,
		RequestTimeout:     *timeout,
		HedgeAfter:         *hedge,
		MaxConnsPerBackend: *maxConns,
		Stack: server.StackConfig{
			RatePerSec:  *rate,
			RateBurst:   *burst,
			MaxInflight: *maxInflight,
			LogEvery:    *logEvery,
			Tracer: trace.New(trace.Config{
				SampleRate: *traceSample,
				RingSize:   *traceRing,
				SlowQuery:  *slowQuery,
			}),
		},
	})
	if err != nil {
		return err
	}
	log.Printf("coordinating %d backends: %s (%d usable at startup)", len(urls), *backends, coord.Healthy())

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	err = <-done
	if err != nil {
		log.Printf("graceful shutdown timed out (%v); closing remaining connections", err)
		httpSrv.Close() //nolint:errcheck // the listeners are already down
	}
	// Drain in-flight scatters before Close tears down the health loop
	// and the backend connection pools they are proxying through.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if derr := coord.Drain(drainCtx); derr != nil {
		log.Printf("shutdown: %v", derr)
	}
	coord.Close()
	return err
}
