// Command pllserved serves a pruned-landmark-labeling index over
// HTTP/JSON. It accepts any .pllbox container (the variant is
// auto-detected from the header): flat (version-2) containers — see
// `pll convert` — are memory-mapped and served zero-copy, so startup
// and SIGHUP reloads skip the decode pass entirely; version-1
// containers are heap-loaded. Either way it answers distance queries in
// microseconds while supporting zero-downtime index replacement.
//
// Usage:
//
//	pllserved -index g.pllbox [-addr :8355] [-cache 65536]
//	pllserved -graph g.txt -dynamic [-addr :8355]   # updatable index built at startup
//
// Endpoints:
//
//	GET  /healthz                 liveness + vertex count
//	GET  /distance?s=0&t=42       exact distance (or reachable:false)
//	GET  /path?s=0&t=42           one shortest path (index built with -paths)
//	POST /batch                   {"pairs":[[s,t],...]} or {"source":s,"targets":[...]}
//	GET  /stats                   index stats + server counters + cache counters
//	POST /update                  {"edges":[[a,b],...]} (dynamic indexes only)
//	POST /reload                  {"path":"new.pllbox"} — atomic hot-swap; empty body re-reads -index
//
// SIGHUP re-reads the -index file in place, like POST /reload with an
// empty body: operators can rebuild an index offline and swap it under
// live traffic without dropping a request. SIGINT/SIGTERM drain
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pll/internal/server"
	"pll/pll"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pllserved:", err)
		os.Exit(1)
	}
}

func run() error {
	indexPath := flag.String("index", "", "container index file (.pllbox) to serve")
	graphPath := flag.String("graph", "", "edge-list file to build a fresh index from (alternative to -index)")
	dynamic := flag.Bool("dynamic", false, "with -graph: build a dynamic index that accepts POST /update")
	addr := flag.String("addr", ":8355", "listen address")
	cacheSize := flag.Int("cache", 0, "distance-cache capacity in entries (0 disables)")
	maxBatch := flag.Int("maxbatch", 0, "max request fan-out: /batch pairs, /knn k, /nearest set size and k, /range results (0 means the default, 4096)")
	maxBody := flag.Int64("maxbody", 0, "max POST body bytes (0 means the default, 1 MiB)")
	workers := flag.Int("workers", 0, "construction workers for -graph builds (0 = all cores; the index is identical regardless)")
	flag.Parse()

	var o pll.Oracle
	var err error
	switch {
	case *indexPath != "" && *graphPath != "":
		return errors.New("-index and -graph are mutually exclusive")
	case *indexPath != "":
		if *dynamic {
			return errors.New("-dynamic needs -graph: serialized dynamic indexes load as frozen snapshots")
		}
		start := time.Now()
		if fi, ferr := pll.Open(*indexPath); ferr == nil {
			// Flat container: mmapped, zero-copy — startup cost is
			// independent of the index size and restarts are O(1).
			o = fi
			log.Printf("mapped %s in %v: %s variant, %d vertices, %d bytes zero-copy",
				*indexPath, time.Since(start).Round(time.Microsecond), fi.Variant(), fi.NumVertices(), fi.MappedBytes())
		} else if !errors.Is(ferr, pll.ErrNotFlat) {
			return ferr
		} else {
			o, err = pll.LoadFile(*indexPath)
			if err != nil {
				return err
			}
			log.Printf("loaded %s in %v: %s variant, %d vertices (heap; run `pll convert` for O(1) mmap startup)",
				*indexPath, time.Since(start).Round(time.Millisecond), o.Stats().Variant, o.NumVertices())
		}
	case *graphPath != "":
		g, err := pll.LoadGraphFile(*graphPath)
		if err != nil {
			return err
		}
		start := time.Now()
		if *dynamic {
			o, err = pll.BuildDynamic(g, pll.WithWorkers(*workers))
		} else {
			o, err = pll.Build(g, pll.WithBitParallel(16), pll.WithWorkers(*workers))
		}
		if err != nil {
			return err
		}
		log.Printf("built %s index over %s in %v (%d workers): %d vertices",
			o.Stats().Variant, *graphPath, time.Since(start).Round(time.Millisecond),
			pll.EffectiveWorkers(*workers), o.NumVertices())
	default:
		return errors.New("one of -index or -graph is required")
	}

	srv := server.New(pll.NewConcurrentOracle(o), server.Config{
		IndexPath: *indexPath,
		CacheSize: *cacheSize,
		MaxBatch:  *maxBatch,
		MaxBody:   *maxBody,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGHUP hot-reloads the index file without dropping traffic;
	// SIGINT/SIGTERM shut down gracefully.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *indexPath == "" {
				log.Printf("SIGHUP ignored: serving a built-in-memory index, use POST /reload with a path")
				continue
			}
			st, err := srv.Reload(*indexPath)
			if err != nil {
				log.Printf("SIGHUP reload failed, keeping the current index: %v", err)
				continue
			}
			log.Printf("SIGHUP reloaded %s: %s variant, %d vertices (generation %d)",
				*indexPath, st.Variant, st.NumVertices, srv.Oracle().Generation())
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	err = <-done
	// Release the mapping (or file) behind the currently served oracle;
	// requests have drained by now.
	if c, ok := srv.Oracle().Snapshot().(pll.Closer); ok {
		c.Close() //nolint:errcheck
	}
	return err
}
