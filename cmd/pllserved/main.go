// Command pllserved serves a pruned-landmark-labeling index over
// HTTP/JSON. It accepts any .pllbox container (the variant is
// auto-detected from the header): flat (version-2) containers — see
// `pll convert` — are memory-mapped and served zero-copy, so startup
// and SIGHUP reloads skip the decode pass entirely; version-1
// containers are heap-loaded. Either way it answers distance queries in
// microseconds while supporting zero-downtime index replacement.
//
// Usage:
//
//	pllserved -index g.pllbox [-addr :8355] [-cache 65536]
//	pllserved -graph g.txt -dynamic [-addr :8355]   # updatable index built at startup
//
// Endpoints:
//
//	GET  /healthz                 liveness + vertex count (never rate limited)
//	GET  /distance?s=0&t=42       exact distance (or reachable:false)
//	GET  /path?s=0&t=42           one shortest path (index built with -paths)
//	POST /batch                   {"pairs":[[s,t],...]} or {"source":s,"targets":[...]}
//	GET  /knn?s=0&k=10            k nearest vertices by exact distance
//	GET  /range?s=0&r=3           vertices within distance r, nearest first (&limit=N)
//	POST /nearest                 {"source":s,"set":[...],"k":K} — nearest set members
//	POST /query                   composite constraint AST (near/and/or/not/in + ranking)
//	GET  /stats                   index stats + server counters + cache counters
//	GET  /metrics                 Prometheus text format: per-endpoint latency
//	                              histograms, cache hit rates, index/hub gauges,
//	                              shed counters (never rate limited)
//	GET  /debug/traces            recent sampled trace span trees; ?id=<traceid>
//	                              fetches one trace (never rate limited)
//	POST /update                  {"edges":[[a,b],...]} (dynamic indexes only)
//	POST /reload                  {"path":"new.pllbox"} — atomic hot-swap; empty body re-reads -index
//
// Request bounds: -maxbatch caps every client-controlled fan-out
// (/batch pairs, /knn k, /nearest set size and k, /range results,
// /query clauses and k); -maxbody caps POST bodies. Admission control:
// -rate/-burst token-bucket-limit each client (X-Client-Id header or
// remote IP), -maxinflight caps concurrently executing requests —
// excess load is shed with 429 + Retry-After instead of queueing.
// -logevery N samples one structured request log line per N requests.
// Tracing: -trace-sample P head-samples a fraction of requests into the
// /debug/traces ring (errors and -slow-query overruns are always
// traced); incoming W3C traceparent headers are honored and every
// response carries X-Trace-Id. -pprof ADDR starts a separate admin
// listener with /debug/pprof/*, /metrics and /debug/traces, kept off
// the public serving port.
//
// SIGHUP re-reads the -index file in place, like POST /reload with an
// empty body: operators can rebuild an index offline and swap it under
// live traffic without dropping a request. SIGINT/SIGTERM drain
// in-flight requests before exiting; a memory-mapped index is unmapped
// only after the last in-flight reader has finished (a drain that
// outlives the grace deliberately leaks the mapping to the exiting
// process rather than unmapping under a reader).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pll/internal/server"
	"pll/pll"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pllserved:", err)
		os.Exit(1)
	}
}

func run() error {
	indexPath := flag.String("index", "", "container index file (.pllbox) to serve")
	graphPath := flag.String("graph", "", "edge-list file to build a fresh index from (alternative to -index)")
	dynamic := flag.Bool("dynamic", false, "with -graph: build a dynamic index that accepts POST /update")
	addr := flag.String("addr", ":8355", "listen address")
	cacheSize := flag.Int("cache", 0, "distance-cache capacity in entries (0 disables)")
	maxBatch := flag.Int("maxbatch", 0, "max request fan-out: /batch pairs, /knn k, /nearest set size and k, /range results, /query clauses and k (0 means the default, 4096)")
	maxBody := flag.Int64("maxbody", 0, "max POST body bytes (0 means the default, 1 MiB)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in req/s, keyed by X-Client-Id or remote IP (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst: requests a client may spend at once (0 means 2x -rate, min 1)")
	maxInflight := flag.Int("maxinflight", 0, "global concurrent-request cap; excess requests are shed with 429 + Retry-After (0 disables)")
	logEvery := flag.Int("logevery", 0, "structured request logging: log every Nth request (0 disables)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests to trace head-sampled in [0,1]; errors and slow queries are always traced")
	traceRing := flag.Int("trace-ring", 0, "recent-trace ring capacity served by /debug/traces (0 means the default, 256)")
	slowQuery := flag.Duration("slow-query", 0, "latency threshold above which a request is traced and logged with its per-stage profile (0 disables)")
	pprofAddr := flag.String("pprof", "", "admin listener address serving /debug/pprof/* and /metrics (empty disables)")
	workers := flag.Int("workers", 0, "construction workers for -graph builds (0 = all cores; the index is identical regardless)")
	flag.Parse()

	var o pll.Oracle
	var err error
	switch {
	case *indexPath != "" && *graphPath != "":
		return errors.New("-index and -graph are mutually exclusive")
	case *indexPath != "":
		if *dynamic {
			return errors.New("-dynamic needs -graph: serialized dynamic indexes load as frozen snapshots")
		}
		start := time.Now()
		if fi, ferr := pll.Open(*indexPath); ferr == nil {
			// Flat container: mmapped, zero-copy — startup cost is
			// independent of the index size and restarts are O(1).
			o = fi
			log.Printf("mapped %s in %v: %s variant, %d vertices, %d bytes zero-copy",
				*indexPath, time.Since(start).Round(time.Microsecond), fi.Variant(), fi.NumVertices(), fi.MappedBytes())
		} else if !errors.Is(ferr, pll.ErrNotFlat) {
			return ferr
		} else {
			o, err = pll.LoadFile(*indexPath)
			if err != nil {
				return err
			}
			log.Printf("loaded %s in %v: %s variant, %d vertices (heap; run `pll convert` for O(1) mmap startup)",
				*indexPath, time.Since(start).Round(time.Millisecond), o.Stats().Variant, o.NumVertices())
		}
	case *graphPath != "":
		g, err := pll.LoadGraphFile(*graphPath)
		if err != nil {
			return err
		}
		start := time.Now()
		if *dynamic {
			o, err = pll.BuildDynamic(g, pll.WithWorkers(*workers))
		} else {
			o, err = pll.Build(g, pll.WithBitParallel(16), pll.WithWorkers(*workers))
		}
		if err != nil {
			return err
		}
		log.Printf("built %s index over %s in %v (%d workers): %d vertices",
			o.Stats().Variant, *graphPath, time.Since(start).Round(time.Millisecond),
			pll.EffectiveWorkers(*workers), o.NumVertices())
	default:
		return errors.New("one of -index or -graph is required")
	}

	srv := server.New(pll.NewConcurrentOracle(o), server.Config{
		IndexPath:   *indexPath,
		CacheSize:   *cacheSize,
		MaxBatch:    *maxBatch,
		MaxBody:     *maxBody,
		RatePerSec:  *rate,
		RateBurst:   *burst,
		MaxInflight: *maxInflight,
		LogEvery:    *logEvery,

		TraceSampleRate: *traceSample,
		TraceRingSize:   *traceRing,
		SlowQuery:       *slowQuery,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		adminMux := http.NewServeMux()
		adminMux.HandleFunc("/debug/pprof/", pprof.Index)
		adminMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		adminMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		adminMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		adminMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminMux.Handle("/metrics", srv.MetricsHandler())
		adminMux.Handle("/debug/traces", srv.DebugTracesHandler())
		adminSrv := &http.Server{Addr: *pprofAddr, Handler: adminMux}
		go func() {
			log.Printf("admin listener (pprof, metrics) on %s", *pprofAddr)
			if aerr := adminSrv.ListenAndServe(); aerr != http.ErrServerClosed {
				log.Printf("admin listener: %v", aerr)
			}
		}()
		defer adminSrv.Close()
	}

	// SIGHUP hot-reloads the index file without dropping traffic;
	// SIGINT/SIGTERM shut down gracefully.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *indexPath == "" {
				log.Printf("SIGHUP ignored: serving a built-in-memory index, use POST /reload with a path")
				continue
			}
			st, err := srv.Reload(*indexPath)
			if err != nil {
				log.Printf("SIGHUP reload failed, keeping the current index: %v", err)
				continue
			}
			log.Printf("SIGHUP reloaded %s: %s variant, %d vertices (generation %d)",
				*indexPath, st.Variant, st.NumVertices, srv.Oracle().Generation())
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	err = <-done
	if err != nil {
		// Shutdown timed out with handlers still running: hard-close the
		// remaining connections so their handlers unblock on the next
		// write, then drain below before touching the mapping.
		log.Printf("graceful shutdown timed out (%v); closing remaining connections", err)
		httpSrv.Close() //nolint:errcheck // the listeners are already down
	}
	// Wait for the last in-flight request to finish before releasing
	// the mapping (or file) behind the currently served oracle: a
	// timed-out handler may still be mid-scan over the mapped labels,
	// and unmapping under it would turn a slow drain into a segfault.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if derr := srv.Drain(drainCtx); derr != nil {
		// Leaking the mapping to the exiting process is safe; unmapping
		// under a reader is not.
		log.Printf("shutdown: %v; leaving the index mapped for the OS to reclaim", derr)
		return err
	}
	if c, ok := srv.Oracle().Snapshot().(pll.Closer); ok {
		c.Close() //nolint:errcheck
	}
	return err
}
