// Command pll builds, inspects and queries pruned-landmark-labeling
// indexes from the command line. All subcommands speak the unified
// container format: an index file carries its own variant tag, so
// query/path/stats/bench work on any index without being told what
// flavor it is.
//
// Usage:
//
//	pll construct -graph g.txt -index g.pll [-kind undirected|directed|weighted] [-bp 16] [-order Degree] [-paths] [-workers 0]
//	pll query     -index g.pll 0 42 17 99        # pairs of vertices
//	pll query     -index g.pll -disk 0 42        # disk-resident querying
//	pll query     -index g.pll -expr "near(3,4) & near(9,2)" -k 10  # composite constraints
//	pll knn       -index g.pll -k 10 0 42        # k nearest vertices per source
//	pll knn       -index g.pll -radius 3 0       # everything within distance 3
//	pll knn       -index g.pll -set 3,17,29 0    # nearest members of a subset
//	pll path      -index g.pll 0 42              # index must be built with -paths
//	pll stats     -index g.pll
//	pll bench     -index g.pll -pairs 100000     # random-query latency
//	pll convert   -index g.pll -out g.flat       # rewrite as flat (mmap) container
//	pll convert   -index g.pll -out g.flat -search  # + persisted search inversion
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pll/internal/rng"
	"pll/pll"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "construct":
		err = construct(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "knn":
		err = knn(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	case "bench":
		err = bench(os.Args[2:])
	case "path":
		err = pathCmd(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "compress":
		err = compress(os.Args[2:])
	case "convert":
		err = convert(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pll:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pll construct -graph g.txt -index g.pll [-kind undirected|directed|weighted] [-bp N] [-order Degree|Random|Closeness] [-seed N] [-paths] [-workers N]
  pll query     -index g.pll [-disk|-mmap] s t [s t ...]
  pll query     -index g.pll [-mmap] -expr "near(3,4) & !near(9,1)" [-rank sum|max] [-terms src[*w],...] [-k N]
  pll knn       -index g.pll [-k N] [-radius R] [-set v1,v2,...] [-mmap] s [s ...]
  pll path      -index g.pll s t          # index must be built with -paths
  pll stats     -index g.pll
  pll bench     -index g.pll [-pairs N] [-seed N]
  pll verify    -index g.pll -graph g.txt [-pairs N]   # undirected indexes
  pll compress  -index g.pll -out g.pllc               # undirected indexes
  pll convert   -index g.pll -out g.flat [-to flat|v1] [-search]

to serve an index over HTTP, see the pllserved command:
  go run ./cmd/pllserved -index g.pll -addr :8355`)
}

func construct(args []string) error {
	fs := flag.NewFlagSet("construct", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input edge-list file")
	indexPath := fs.String("index", "", "output index file")
	kind := fs.String("kind", "undirected", "graph kind: undirected, directed or weighted")
	bp := fs.Int("bp", 16, "number of bit-parallel BFSs (undirected only)")
	ord := fs.String("order", "Degree", "vertex ordering strategy")
	seed := fs.Uint64("seed", 1, "ordering seed")
	paths := fs.Bool("paths", false, "store parent pointers for path queries")
	workers := fs.Int("workers", 0, "construction worker goroutines (0 = all cores, 1 = sequential; output is identical either way)")
	fs.Parse(args)
	if *graphPath == "" || *indexPath == "" {
		return fmt.Errorf("construct needs -graph and -index")
	}
	switch *kind {
	case "undirected", "directed", "weighted":
	default:
		return fmt.Errorf("unknown graph kind %q", *kind)
	}
	opts := []pll.Option{pll.WithSeed(*seed), pll.WithWorkers(*workers)}
	switch *ord {
	case "Degree", "degree":
		opts = append(opts, pll.WithOrdering(pll.OrderDegree))
	case "Random", "random":
		opts = append(opts, pll.WithOrdering(pll.OrderRandom))
	case "Closeness", "closeness":
		opts = append(opts, pll.WithOrdering(pll.OrderCloseness))
	default:
		return fmt.Errorf("unknown ordering %q", *ord)
	}
	if *paths {
		if *kind != "undirected" {
			// Directed/weighted indexes can hold parent pointers in
			// memory but not serialize them; fail before the build, not
			// after it.
			return fmt.Errorf("-paths indexes of kind %q cannot be written to a file; use kind undirected", *kind)
		}
		opts = append(opts, pll.WithPaths())
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	var g pll.BuildableGraph
	switch *kind {
	case "undirected":
		opts = append(opts, pll.WithBitParallel(*bp))
		g, err = pll.LoadGraph(f)
	case "directed":
		g, err = pll.LoadDigraph(f)
	case "weighted":
		g, err = pll.LoadWeightedGraph(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d vertices, %d edges (%s)\n",
		*graphPath, g.NumVertices(), numEdges(g), *kind)

	start := time.Now()
	o, err := pll.Build(g, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := pll.WriteFile(*indexPath, o); err != nil {
		return err
	}
	st := o.Stats()
	fmt.Printf("indexed in %v: %s variant, avg label %.1f (+%d bit-parallel), %d bytes -> %s\n",
		elapsed, st.Variant, st.AvgLabelSize, st.NumBitParallel, st.IndexBytes, *indexPath)
	return nil
}

// numEdges reports the edge (or arc) count of any buildable graph.
func numEdges(g pll.BuildableGraph) int64 {
	switch g := g.(type) {
	case *pll.Graph:
		return g.NumEdges()
	case *pll.Digraph:
		return g.NumArcs()
	case *pll.WeightedGraph:
		return g.NumEdges()
	}
	return 0
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	disk := fs.Bool("disk", false, "answer from disk without loading labels (version-1 files)")
	mmapped := fs.Bool("mmap", false, "memory-map a flat container instead of heap-loading it")
	expr := fs.String("expr", "", `composite constraint expression, e.g. "near(3,4) & !near(9,1)"`)
	rankBy := fs.String("rank", "sum", "composite ranking: sum or max of the weighted term distances")
	terms := fs.String("terms", "", "composite ranking terms: src[*weight],... (default: the near sources)")
	topK := fs.Int("k", 0, "keep only the k best-ranked composite matches (0 = all)")
	fs.Parse(args)
	if *indexPath == "" {
		return fmt.Errorf("query needs -index")
	}
	if *disk && *mmapped {
		return fmt.Errorf("-disk and -mmap are mutually exclusive")
	}
	if *expr != "" {
		if *disk {
			return fmt.Errorf("-expr needs the in-memory or mmap engine; drop -disk")
		}
		if len(fs.Args()) != 0 {
			return fmt.Errorf("-expr takes no vertex arguments")
		}
		return compositeQuery(*indexPath, *mmapped, *expr, *rankBy, *terms, *topK)
	}
	rest := fs.Args()
	if len(rest) == 0 || len(rest)%2 != 0 {
		return fmt.Errorf("query needs an even number of vertex arguments")
	}
	pairs := make([][2]int32, 0, len(rest)/2)
	for i := 0; i < len(rest); i += 2 {
		s, err := strconv.ParseInt(rest[i], 10, 32)
		if err != nil {
			return fmt.Errorf("bad vertex %q: %v", rest[i], err)
		}
		t, err := strconv.ParseInt(rest[i+1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad vertex %q: %v", rest[i+1], err)
		}
		pairs = append(pairs, [2]int32{int32(s), int32(t)})
	}
	if *disk {
		di, err := pll.OpenDiskIndex(*indexPath)
		if err != nil {
			return err
		}
		defer di.Close()
		for _, p := range pairs {
			d, err := di.Distance(p[0], p[1])
			if err != nil {
				return err
			}
			printDistance(p[0], p[1], d)
		}
		return nil
	}
	var o pll.Oracle
	var err error
	if *mmapped {
		fi, ferr := pll.Open(*indexPath)
		if ferr != nil {
			return ferr
		}
		defer fi.Close()
		o = fi
	} else if o, err = pll.LoadFile(*indexPath); err != nil {
		return err
	}
	for _, p := range pairs {
		if err := pll.Validate(o, p[0], p[1]); err != nil {
			return err
		}
		printDistance(p[0], p[1], o.Distance(p[0], p[1]))
	}
	return nil
}

// compositeQuery answers `pll query -expr`: parse the constraint
// mini-syntax, attach ranking, and run it through the CompositeSearcher
// capability of the loaded (or memory-mapped) index.
func compositeQuery(indexPath string, mmapped bool, expr, rankBy, termSpec string, topK int) error {
	where, err := parseExpr(expr)
	if err != nil {
		return fmt.Errorf("bad -expr: %v", err)
	}
	req := &pll.CompositeRequest{Where: where, K: topK}
	if rankBy != "sum" || termSpec != "" {
		req.Rank = &pll.CompositeRank{By: rankBy}
		if termSpec != "" {
			if req.Rank.Terms, err = parseTerms(termSpec); err != nil {
				return err
			}
		}
	}
	var o pll.Oracle
	if mmapped {
		fi, err := pll.Open(indexPath)
		if err != nil {
			return err
		}
		defer fi.Close()
		o = fi
	} else if o, err = pll.LoadFile(indexPath); err != nil {
		return err
	}
	cs, ok := o.(pll.CompositeSearcher)
	if !ok {
		return fmt.Errorf("the %T oracle does not support composite queries", o)
	}
	res, err := cs.Composite(req)
	if err != nil {
		return err
	}
	exactness := "exactly"
	if !res.Exact {
		exactness = "at least"
	}
	fmt.Printf("%d matches (%s %d satisfy the constraints)\n", len(res.Matches), exactness, res.Total)
	for _, m := range res.Matches {
		if m.Score < 0 {
			fmt.Printf("  %d\tscore=unreachable\n", m.Vertex)
			continue
		}
		fmt.Printf("  %d\tscore=%d\tterms=%v\n", m.Vertex, m.Score, m.Terms)
	}
	return nil
}

// knn answers neighborhood queries from the command line: for each
// source vertex, the k nearest vertices (default), everything within
// -radius, or the nearest members of a -set — all through the Searcher
// capability, so any static index file works.
func knn(args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	k := fs.Int("k", 10, "number of neighbors per source")
	radius := fs.Int64("radius", -1, "report everything within this distance instead of the k nearest")
	setSpec := fs.String("set", "", "comma-separated vertex subset: report the k nearest members")
	mmapped := fs.Bool("mmap", false, "memory-map a flat container instead of heap-loading it")
	fs.Parse(args)
	if *indexPath == "" {
		return fmt.Errorf("knn needs -index")
	}
	if *radius >= 0 && *setSpec != "" {
		return fmt.Errorf("-radius and -set are mutually exclusive")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("knn needs at least one source vertex")
	}
	sources := make([]int32, len(rest))
	for i, raw := range rest {
		v, err := strconv.ParseInt(raw, 10, 32)
		if err != nil {
			return fmt.Errorf("bad vertex %q: %v", raw, err)
		}
		sources[i] = int32(v)
	}

	var o pll.Oracle
	if *mmapped {
		fi, err := pll.Open(*indexPath)
		if err != nil {
			return err
		}
		defer fi.Close()
		o = fi
	} else {
		var err error
		if o, err = pll.LoadFile(*indexPath); err != nil {
			return err
		}
	}
	sr, ok := o.(pll.Searcher)
	if !ok {
		return fmt.Errorf("the %T oracle does not support search queries", o)
	}

	var set *pll.VertexSet
	if *setSpec != "" {
		var members []int32
		for _, raw := range strings.Split(*setSpec, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 32)
			if err != nil {
				return fmt.Errorf("bad set member %q: %v", raw, err)
			}
			members = append(members, int32(v))
		}
		var err error
		if set, err = sr.NewVertexSet(members); err != nil {
			return err
		}
	}

	for _, s := range sources {
		if err := pll.Validate(o, s); err != nil {
			return err
		}
		var (
			res []pll.Neighbor
			err error
		)
		switch {
		case *radius >= 0:
			res, err = sr.Range(s, *radius)
		case set != nil:
			res, err = sr.NearestIn(s, set, *k)
		default:
			res, err = sr.KNN(s, *k)
		}
		if err != nil {
			return err
		}
		fmt.Printf("source %d: %d neighbors\n", s, len(res))
		for _, nb := range res {
			fmt.Printf("  %d\t%d\n", nb.Vertex, nb.Distance)
		}
	}
	return nil
}

// convert rewrites any supported index file into the flat (version-2)
// zero-copy container served by pll.Open / pllserved mmap startup, or
// back into the version-1 record format.
func convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	indexPath := fs.String("index", "", "input index file (any supported format)")
	out := fs.String("out", "", "output container file")
	to := fs.String("to", "flat", "target format: flat (version-2, mmap-served) or v1 (record-oriented)")
	search := fs.Bool("search", false, "persist the hub-inverted search index (flat only), so mmap serving answers /knn with no lazy build")
	fs.Parse(args)
	if *indexPath == "" || *out == "" {
		return fmt.Errorf("convert needs -index and -out")
	}
	if *search && *to != "flat" {
		return fmt.Errorf("-search requires -to flat")
	}
	o, err := pll.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	switch *to {
	case "flat":
		var opts []pll.FlatOption
		if *search {
			opts = append(opts, pll.FlatSearch())
		}
		err = pll.WriteFlatFile(*out, o, opts...)
	case "v1":
		err = pll.WriteFile(*out, o)
	default:
		return fmt.Errorf("unknown target format %q (want flat or v1)", *to)
	}
	if err != nil {
		return err
	}
	before, err := os.Stat(*indexPath)
	if err != nil {
		return err
	}
	after, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("converted %s (%d bytes) -> %s %s (%d bytes, %.1f%%)\n",
		*indexPath, before.Size(), *to, *out, after.Size(),
		100*float64(after.Size())/float64(before.Size()))
	return nil
}

func pathCmd(args []string) error {
	fs := flag.NewFlagSet("path", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (built with -paths)")
	fs.Parse(args)
	if *indexPath == "" {
		return fmt.Errorf("path needs -index")
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("path needs exactly two vertices")
	}
	s, err := strconv.ParseInt(rest[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad vertex %q: %v", rest[0], err)
	}
	t, err := strconv.ParseInt(rest[1], 10, 32)
	if err != nil {
		return fmt.Errorf("bad vertex %q: %v", rest[1], err)
	}
	o, err := pll.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	if err := pll.Validate(o, int32(s), int32(t)); err != nil {
		return err
	}
	p, err := o.Path(int32(s), int32(t))
	if err != nil {
		return err
	}
	if p == nil {
		fmt.Printf("no path: %d and %d are disconnected\n", s, t)
		return nil
	}
	fmt.Printf("path (%d hops): %v\n", len(p)-1, p)
	return nil
}

func printDistance(s, t int32, d int64) {
	if d == pll.Unreachable {
		fmt.Printf("d(%d,%d) = unreachable\n", s, t)
		return
	}
	fmt.Printf("d(%d,%d) = %d\n", s, t, d)
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	fs.Parse(args)
	if *indexPath == "" {
		return fmt.Errorf("stats needs -index")
	}
	o, err := pll.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	st := o.Stats()
	fmt.Printf("variant:             %s\n", st.Variant)
	fmt.Printf("vertices:            %d\n", st.NumVertices)
	fmt.Printf("bit-parallel roots:  %d\n", st.NumBitParallel)
	fmt.Printf("label entries:       %d\n", st.TotalLabelEntries)
	fmt.Printf("avg label size:      %.2f\n", st.AvgLabelSize)
	fmt.Printf("max label size:      %d\n", st.MaxLabelSize)
	fmt.Printf("label quantiles:     min=%d p25=%d p50=%d p75=%d max=%d\n",
		st.LabelSizeQuantiles[0], st.LabelSizeQuantiles[1], st.LabelSizeQuantiles[2],
		st.LabelSizeQuantiles[3], st.LabelSizeQuantiles[4])
	fmt.Printf("index bytes:         %d (labels %d, bit-parallel %d)\n",
		st.IndexBytes, st.NormalLabelBytes, st.BitParallelBytes)
	fmt.Printf("hub occupancy:       %d distinct hubs, max load %d, avg load %.2f\n",
		st.DistinctHubs, st.MaxHubLoad, st.AvgHubLoad)
	fmt.Printf("path reconstruction: %v\n", st.HasParentPointers)
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	graphPath := fs.String("graph", "", "edge-list file the index was built from")
	pairs := fs.Int("pairs", 1000, "random pairs cross-checked against BFS")
	seed := fs.Uint64("seed", 1, "pair sampling seed")
	fs.Parse(args)
	if *indexPath == "" || *graphPath == "" {
		return fmt.Errorf("verify needs -index and -graph")
	}
	ix, err := pll.LoadIndexFile(*indexPath)
	if err != nil {
		return err
	}
	g, err := pll.LoadGraphFile(*graphPath)
	if err != nil {
		return err
	}
	if err := ix.Verify(g, *pairs, *seed); err != nil {
		return err
	}
	fmt.Printf("index OK: structure valid, %d sampled queries exact\n", *pairs)
	return nil
}

func compress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	indexPath := fs.String("index", "", "input index file (undirected, uncompressed)")
	out := fs.String("out", "", "output compressed index file")
	fs.Parse(args)
	if *indexPath == "" || *out == "" {
		return fmt.Errorf("compress needs -index and -out")
	}
	ix, err := pll.LoadIndexFile(*indexPath)
	if err != nil {
		return err
	}
	if err := ix.SaveCompressedFile(*out); err != nil {
		return err
	}
	before, err := os.Stat(*indexPath)
	if err != nil {
		return err
	}
	after, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("compressed %d -> %d bytes (%.1f%%)\n",
		before.Size(), after.Size(), 100*float64(after.Size())/float64(before.Size()))
	return nil
}

func bench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file")
	pairs := fs.Int("pairs", 100000, "number of random query pairs")
	seed := fs.Uint64("seed", 1, "query sampling seed")
	fs.Parse(args)
	if *indexPath == "" {
		return fmt.Errorf("bench needs -index")
	}
	o, err := pll.LoadFile(*indexPath)
	if err != nil {
		return err
	}
	n := int32(o.NumVertices())
	if n == 0 {
		return fmt.Errorf("empty index")
	}
	r := rng.New(*seed)
	qs := make([][2]int32, *pairs)
	for i := range qs {
		qs[i] = [2]int32{r.Int31n(n), r.Int31n(n)}
	}
	start := time.Now()
	sink := int64(0)
	for _, q := range qs {
		sink += o.Distance(q[0], q[1])
	}
	elapsed := time.Since(start)
	_ = sink
	fmt.Printf("%d queries in %v (%.2f us/query)\n",
		*pairs, elapsed, float64(elapsed.Nanoseconds())/float64(*pairs)/1e3)
	return nil
}
