package main

import (
	"reflect"
	"testing"

	"pll/pll"
)

func near(s int32, d int64) *pll.CompositeClause {
	return &pll.CompositeClause{Near: &pll.NearClause{Source: s, MaxDist: d}}
}

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in   string
		want *pll.CompositeClause
	}{
		{"near(3,4)", near(3, 4)},
		{"in(1,5,9)", &pll.CompositeClause{In: []int32{1, 5, 9}}},
		{"near(3,4) & near(9,2)", &pll.CompositeClause{And: []*pll.CompositeClause{near(3, 4), near(9, 2)}}},
		{"near(0,5) & !near(7,1)", &pll.CompositeClause{And: []*pll.CompositeClause{
			near(0, 5), {Not: near(7, 1)},
		}}},
		// & binds tighter than |.
		{"near(1,1) | near(2,2) & near(3,3)", &pll.CompositeClause{Or: []*pll.CompositeClause{
			near(1, 1),
			{And: []*pll.CompositeClause{near(2, 2), near(3, 3)}},
		}}},
		// Parens override precedence.
		{"(near(1,1) | near(2,2)) & in(4)", &pll.CompositeClause{And: []*pll.CompositeClause{
			{Or: []*pll.CompositeClause{near(1, 1), near(2, 2)}},
			{In: []int32{4}},
		}}},
		{" near( 10 , 20 ) ", near(10, 20)},
	}
	for _, tc := range cases {
		got, err := parseExpr(tc.in)
		if err != nil {
			t.Fatalf("parseExpr(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("parseExpr(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"near(3)",
		"near(3,4,5)",
		"in()",
		"far(3,4)",
		"near(3,4) &",
		"near(3,4) near(5,6)",
		"(near(3,4)",
		"near(3,4))",
		"near(x,4)",
		"near(99999999999,4)",
		"& near(3,4)",
	} {
		if _, err := parseExpr(in); err == nil {
			t.Fatalf("parseExpr(%q) succeeded, want error", in)
		}
	}
}

func TestParseTerms(t *testing.T) {
	got, err := parseTerms("5*2, 13")
	if err != nil {
		t.Fatal(err)
	}
	want := []pll.CompositeTerm{{Source: 5, Weight: 2}, {Source: 13}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTerms = %+v, want %+v", got, want)
	}
	for _, in := range []string{"", "x", "5*", "5*x", "5**2"} {
		if _, err := parseTerms(in); err == nil {
			t.Fatalf("parseTerms(%q) succeeded, want error", in)
		}
	}
}
