package main

// The constraint mini-syntax behind `pll query -expr`: a compact infix
// form of the composite-query AST, with ! binding tighter than &,
// & tighter than |, and parentheses for grouping.
//
//	near(3,4) & near(9,2)            within 4 of 3 AND within 2 of 9
//	near(0,5) & !near(7,1)           ... excluding 7's 1-neighborhood
//	(near(2,3) | near(4,3)) & in(1,5,9)
//
// The parser only builds the pll.CompositeClause tree; structural rules
// (e.g. ! only directly under &) are enforced by Validate, so the CLI
// reports the same errors the HTTP endpoint would.

import (
	"fmt"
	"strconv"
	"strings"

	"pll/pll"
)

type exprParser struct {
	s   string
	pos int
}

// parseExpr parses the full mini-syntax expression.
func parseExpr(s string) (*pll.CompositeClause, error) {
	p := &exprParser{s: s}
	c, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("unexpected %q at offset %d", p.s[p.pos:], p.pos)
	}
	return c, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it, or 0.
func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *exprParser) orExpr() (*pll.CompositeClause, error) {
	first, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []*pll.CompositeClause{first}
	for p.peek() == '|' {
		p.pos++
		k, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &pll.CompositeClause{Or: kids}, nil
}

func (p *exprParser) andExpr() (*pll.CompositeClause, error) {
	first, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	kids := []*pll.CompositeClause{first}
	for p.peek() == '&' {
		p.pos++
		k, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &pll.CompositeClause{And: kids}, nil
}

func (p *exprParser) notExpr() (*pll.CompositeClause, error) {
	if p.peek() == '!' {
		p.pos++
		k, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &pll.CompositeClause{Not: k}, nil
	}
	return p.primary()
}

func (p *exprParser) primary() (*pll.CompositeClause, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	case c >= 'a' && c <= 'z':
		name := p.ident()
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		switch name {
		case "near":
			if len(args) != 2 {
				return nil, fmt.Errorf("near wants (vertex,maxdist), got %d args", len(args))
			}
			if args[0] != int64(int32(args[0])) {
				return nil, fmt.Errorf("near vertex %d overflows int32", args[0])
			}
			return &pll.CompositeClause{Near: &pll.NearClause{Source: int32(args[0]), MaxDist: args[1]}}, nil
		case "in":
			if len(args) == 0 {
				return nil, fmt.Errorf("in wants at least one vertex")
			}
			members := make([]int32, len(args))
			for i, a := range args {
				if a != int64(int32(a)) {
					return nil, fmt.Errorf("in vertex %d overflows int32", a)
				}
				members[i] = int32(a)
			}
			return &pll.CompositeClause{In: members}, nil
		default:
			return nil, fmt.Errorf("unknown constraint %q (want near or in)", name)
		}
	default:
		return nil, fmt.Errorf("expected a constraint at offset %d", p.pos)
	}
}

func (p *exprParser) ident() string {
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= 'a' && p.s[p.pos] <= 'z' {
		p.pos++
	}
	return p.s[start:p.pos]
}

// argList parses a parenthesized comma-separated integer list.
func (p *exprParser) argList() ([]int64, error) {
	if p.peek() != '(' {
		return nil, fmt.Errorf("missing '(' at offset %d", p.pos)
	}
	p.pos++
	var args []int64
	for {
		p.skipSpace()
		start := p.pos
		if p.pos < len(p.s) && p.s[p.pos] == '-' {
			p.pos++
		}
		for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.s[start:p.pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number at offset %d", start)
		}
		args = append(args, v)
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return args, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')' at offset %d", p.pos)
		}
	}
}

// parseTerms parses the -terms spec: comma-separated source vertices,
// each optionally weighted as src*weight (e.g. "5*2,13").
func parseTerms(spec string) ([]pll.CompositeTerm, error) {
	var terms []pll.CompositeTerm
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		src, weightSpec, weighted := strings.Cut(raw, "*")
		v, err := strconv.ParseInt(src, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad term source %q", raw)
		}
		t := pll.CompositeTerm{Source: int32(v)}
		if weighted {
			w, err := strconv.ParseInt(weightSpec, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad term weight %q", raw)
			}
			t.Weight = w
		}
		terms = append(terms, t)
	}
	return terms, nil
}
